module B = Ac_bignum
module W = Ac_word
module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module Value = Ac_lang.Value
module Layout = Ac_lang.Layout
module M = Ac_monad.M
module T = Ac_prover.Term
module SMap = Map.Make (String)

(* Weakest-precondition verification-condition generation over abstracted
   monadic programs.

   The symbolic state is exactly the state the heap-abstraction phase
   presents: one array per lifted type (split per struct field, i.e. the
   Burstall-Bornat model Mehta and Nipkow verified against), one validity
   array per type, and the global variables.  Guards are proof obligations
   (total correctness); loops are cut at user-supplied invariants with
   optional termination measures. *)

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun m -> raise (Unsupported m)) fmt

(* ------------------------------------------------------------------ *)
(* Symbolic state. *)

type sym_state = { arrays : T.t SMap.t (* array/scalar state components *) }

let heap_name (c : Ty.cty) = "heap_" ^ Ty.cty_mangle c
let valid_name (c : Ty.cty) = "valid_" ^ Ty.cty_mangle c
let field_heap_name sname fname = Printf.sprintf "heap_%s_%s" sname fname
let global_name g = "g_" ^ g

let state_get st name =
  match SMap.find_opt name st.arrays with
  | Some t -> t
  | None -> unsupported "state component %s" name

let state_set st name v = { arrays = SMap.add name v st.arrays }

(* The state components of a program: used to build the initial state and
   to havoc at loop heads. *)
let state_components (prog : M.program) : (string * T.sort) list =
  let heaps =
    List.concat_map
      (fun (c : Ty.cty) ->
        match c with
        | Ty.Cstruct n ->
          (valid_name c, T.Sarr T.Sbool)
          :: List.map
               (fun (f : Layout.field) ->
                 (field_heap_name n f.Layout.fname, T.Sarr T.Sint))
               (Layout.fields_of prog.M.lenv n)
        | _ -> [ (heap_name c, T.Sarr T.Sint); (valid_name c, T.Sarr T.Sbool) ])
      prog.M.heap_types
  in
  let globals =
    List.map
      (fun (g, t) ->
        ( global_name g,
          match t with
          | Ty.Tbool -> T.Sbool
          | _ -> T.Sint ))
      prog.M.globals
  in
  heaps @ globals

let initial_state (prog : M.program) : sym_state =
  {
    arrays =
      List.fold_left
        (fun m (n, s) -> SMap.add n (T.Var (n, s)) m)
        SMap.empty (state_components prog);
  }

(* ------------------------------------------------------------------ *)
(* Values: tuple spines of terms (loop iterators are tuples). *)

type tv = Tone of T.t | Ttup of tv list

let rec tv_to_term = function
  | Tone t -> t
  | Ttup [ x ] -> tv_to_term x
  | Ttup _ -> unsupported "tuple value in scalar position"

let unit_tv = Ttup []

(* ------------------------------------------------------------------ *)
(* Expression translation. *)

type env = {
  vars : tv SMap.t; (* program variables *)
  lenv : Layout.env;
}

let pow2 n = T.Int (B.pow2 n)
let umax w = T.Int (B.pred (B.pow2 (W.bits w)))

(* The signed reinterpretation of an unsigned representative. *)
let sint_of w (t : T.t) =
  T.ite_t
    (T.lt_t t (pow2 (W.bits w - 1)))
    t
    (T.sub_t t (pow2 (W.bits w)))

let rec tr_expr (env : env) (st : sym_state) (e : E.t) : tv =
  let scalar e = tv_to_term (tr_expr env st e) in
  match e with
  | E.Const v -> tr_value v
  | E.Var (x, _) -> (
    match SMap.find_opt x env.vars with
    | Some t -> t
    | None -> unsupported "unbound variable %s" x)
  | E.Global (g, _) -> Tone (state_get st (global_name g))
  | E.Unop (E.Neg, x) -> Tone (T.App (T.Neg, [ scalar x ]))
  | E.Unop (E.Not, x) -> Tone (T.not_t (scalar x))
  | E.Unop (E.Bnot, _) -> unsupported "bitwise complement in VC"
  | E.Binop (op, a, b) -> Tone (tr_binop env st op a b)
  | E.Ite (c, a, b) -> Tone (T.ite_t (scalar c) (scalar a) (scalar b))
  | E.Cast (Ty.Tword (_, w), x) ->
    (* re-concretisation: reduce to the unsigned representative *)
    Tone (T.App (T.Mod, [ scalar x; pow2 (W.bits w) ]))
  | E.Cast ((Ty.Tint | Ty.Tnat), x) -> Tone (scalar x)
  | E.Cast (Ty.Tptr _, x) -> Tone (scalar x)
  | E.Cast (t, _) -> unsupported "cast to %s in VC" (Ty.to_string t)
  | E.OfWord (Ty.Tnat, x) -> Tone (scalar x) (* words are their unsigned value *)
  | E.OfWord (Ty.Tint, x) -> (
    match word_width x with
    | Some w -> Tone (sint_of w (scalar x))
    | None -> unsupported "sint of unknown width")
  | E.OfWord _ -> unsupported "of_word in VC"
  | E.TypedRead (c, p) -> (
    match c with
    | Ty.Cstruct _ -> unsupported "whole-struct read in VC"
    | _ -> Tone (T.select_t (state_get st (heap_name c)) (scalar p)))
  | E.StructGet (sname, fname, E.TypedRead (Ty.Cstruct s, p)) when String.equal s sname ->
    Tone (T.select_t (state_get st (field_heap_name sname fname)) (scalar p))
  | E.StructGet _ -> unsupported "struct access outside the split-heap pattern"
  | E.IsValid (c, p) -> Tone (T.select_t (state_get st (valid_name c)) (scalar p))
  | E.PtrAligned _ | E.PtrSpan _ -> unsupported "byte-level guard in VC"
  | E.HeapRead _ -> unsupported "byte-level heap read in VC"
  | E.PtrAdd (c, p, n) ->
    let size = Layout.size_of env.lenv c in
    let idx =
      match word_sign n with
      | Some (Ty.Signed, w) -> sint_of w (scalar n)
      | _ -> scalar n
    in
    Tone (T.add_t (scalar p) (T.mul_t (T.int_of size) idx))
  | E.FieldAddr _ -> unsupported "field address in VC (use the split heaps)"
  | E.StructSet _ -> unsupported "struct update outside a heap write"
  | E.Tuple es -> Ttup (List.map (tr_expr env st) es)
  | E.Proj (i, x) -> (
    match tr_expr env st x with
    | Ttup vs when i < List.length vs -> List.nth vs i
    | _ -> unsupported "projection of non-tuple")

and tr_value (v : Value.t) : tv =
  match v with
  | Value.Vunit -> unit_tv
  | Value.Vbool b -> Tone (T.Bool b)
  | Value.Vint n -> Tone (T.Int n)
  | Value.Vnat n -> Tone (T.Int n)
  | Value.Vword (_, w) -> Tone (T.Int (W.unat w))
  | Value.Vptr (a, _) -> Tone (T.Int a)
  | Value.Vtuple vs -> Ttup (List.map tr_value vs)
  | Value.Vstruct _ -> unsupported "struct literal in VC"

and word_width (e : E.t) : Ty.width option =
  match word_sign e with Some (_, w) -> Some w | None -> None

and word_sign (e : E.t) : (Ty.sign * Ty.width) option =
  match e with
  | E.Const (Value.Vword (s, w)) -> Some (s, W.width_of w)
  | E.Var (_, Ty.Tword (s, w)) | E.Global (_, Ty.Tword (s, w)) -> Some (s, w)
  | E.Cast (Ty.Tword (s, w), _) -> Some (s, w)
  | E.Binop (_, a, b) -> (
    match word_sign a with Some x -> Some x | None -> word_sign b)
  | E.Ite (_, a, b) -> ( match word_sign a with Some x -> Some x | None -> word_sign b)
  | E.TypedRead (Ty.Cword (s, w), _) | E.HeapRead (Ty.Cword (s, w), _) -> Some (s, w)
  | _ -> None

and tr_binop env st (op : E.binop) (a : E.t) (b : E.t) : T.t =
  let sa = tv_to_term (tr_expr env st a) and sb = tv_to_term (tr_expr env st b) in
  let is_word = word_sign a <> None || word_sign b <> None in
  let is_nat =
    (* ideal naturals: monus semantics for subtraction *)
    let rec nat_hint (e : E.t) =
      match e with
      | E.Const (Value.Vnat _) -> true
      | E.Var (_, Ty.Tnat) | E.Global (_, Ty.Tnat) -> true
      | E.OfWord (Ty.Tnat, _) -> true
      | E.Binop (_, x, y) -> nat_hint x || nat_hint y
      | E.Ite (_, x, y) -> nat_hint x || nat_hint y
      | E.Cast (Ty.Tnat, _) -> true
      | _ -> false
    in
    nat_hint a
  in
  let wrap ?(offset = false) t =
    (* Words are represented by their unsigned value in [0, 2^w); reduction
       is by mod.  For subtraction the dividend can be negative, and the
       prover's mod is truncated, so shift by 2^w first (exact because both
       operands are in range). *)
    match (is_word, word_sign a, word_sign b) with
    | true, Some (_, w), _ | true, _, Some (_, w) ->
      let t = if offset then T.add_t t (pow2 (W.bits w)) else t in
      T.App (T.Mod, [ t; pow2 (W.bits w) ])
    | _ -> t
  in
  let signed_cmp mk =
    match (word_sign a, word_sign b) with
    | (Some (Ty.Signed, w), _ | _, Some (Ty.Signed, w)) when is_word ->
      mk (sint_of w sa) (sint_of w sb)
    | _ -> mk sa sb
  in
  match op with
  | E.Add -> wrap (T.add_t sa sb)
  | E.Sub ->
    if is_word then wrap ~offset:true (T.sub_t sa sb)
    else if is_nat then T.ite_t (T.le_t sb sa) (T.sub_t sa sb) T.zero
    else T.sub_t sa sb
  | E.Mul -> wrap (T.mul_t sa sb)
  | E.Div -> T.App (T.Div, [ sa; sb ])
  | E.Rem -> T.App (T.Mod, [ sa; sb ])
  | E.Eq -> T.eq_t sa sb
  | E.Ne -> T.not_t (T.eq_t sa sb)
  | E.Lt -> signed_cmp T.lt_t
  | E.Le -> signed_cmp T.le_t
  | E.Gt -> signed_cmp (fun x y -> T.lt_t y x)
  | E.Ge -> signed_cmp (fun x y -> T.le_t y x)
  | E.And -> T.and_t sa sb
  | E.Or -> T.or_t sa sb
  | E.Imp -> T.imp_t sa sb
  | E.Shl | E.Shr | E.Band | E.Bor | E.Bxor -> unsupported "bit-level operator in VC"

(* ------------------------------------------------------------------ *)
(* State updates. *)

let rec apply_smod env (st : sym_state) (sm : M.smod) : sym_state =
  let scalar e = tv_to_term (tr_expr env st e) in
  match sm with
  | M.Typed_write (Ty.Cstruct sname, p, v) ->
    (* decompose nested field updates rooted at the same pointer *)
    let pt = scalar p in
    let rec fields (e : E.t) (acc : (string * T.t) list) =
      match e with
      | E.StructSet (s, f, base, x) when String.equal s sname ->
        fields base ((f, scalar x) :: acc)
      | E.TypedRead (Ty.Cstruct s, p') when String.equal s sname && E.equal p' p -> acc
      | _ -> unsupported "struct write outside the split-heap pattern"
    in
    List.fold_left
      (fun st (f, x) ->
        let hn = field_heap_name sname f in
        state_set st hn (T.store_t (state_get st hn) pt x))
      st
      (fields v [])
  | M.Typed_write (c, p, v) ->
    let hn = heap_name c in
    state_set st hn (T.store_t (state_get st hn) (scalar p) (scalar v))
  | M.Global_set (g, e) -> state_set st (global_name g) (scalar e)
  | M.Local_set _ -> unsupported "state-resident local in VC (run L2 first)"
  | M.Heap_write _ | M.Retype _ -> unsupported "byte-level write in VC"

(* ------------------------------------------------------------------ *)
(* Loop annotations and function contracts. *)

type invariant = {
  inv : (string * tv) list -> (string * T.t) list -> sym_state -> T.t;
      (* iterator bindings (by pattern variable name), ghost bindings,
         current state *)
  measure : ((string * tv) list -> (string * T.t) list -> sym_state -> T.t) option;
      (* nat-valued; must decrease on every iteration *)
  ghosts : (string * T.sort) list;
      (* existentially quantified ghost variables of the invariant,
         witnessed explicitly (ghost code), as in interactive proofs *)
  ghost_init : (string * tv) list -> sym_state -> (string * T.t) list;
  ghost_step :
    (string * tv) list (* iterator before *) ->
    (string * T.t) list (* ghosts before *) ->
    sym_state (* state before *) ->
    (string * tv) list (* iterator after *) ->
    sym_state (* state after *) ->
    (string * T.t) list;
  hints : (string * tv) list -> (string * T.t) list -> sym_state -> T.t list;
      (* lemma instances assumed while discharging this loop's VCs; they
         must be instances of validated lemmas (see lib/cases) *)
}

(* An invariant with no ghosts and no hints. *)
let simple_invariant ?measure inv =
  {
    inv = (fun binds _ st -> inv binds st);
    measure =
      (match measure with
      | Some m -> Some (fun binds _ st -> m binds st)
      | None -> None);
    ghosts = [];
    ghost_init = (fun _ _ -> []);
    ghost_step = (fun _ _ _ _ _ -> []);
    hints = (fun _ _ _ -> []);
  }

type contract = {
  pre : tv list -> sym_state -> T.t;
  post : tv list -> tv -> sym_state -> sym_state -> T.t; (* args, result, pre & post states *)
  modifies : string list; (* state components the callee may change *)
}

type config = {
  prog : M.program;
  invariants : (string * int, invariant) Hashtbl.t; (* function, loop index *)
  contracts : (string, contract) Hashtbl.t;
  mutable fresh : int;
}

let make_config prog = { prog; invariants = Hashtbl.create 8; contracts = Hashtbl.create 8; fresh = 0 }

let add_invariant cfg fname idx inv = Hashtbl.replace cfg.invariants (fname, idx) inv
let add_contract cfg fname c = Hashtbl.replace cfg.contracts fname c

let fresh_var cfg base sort =
  cfg.fresh <- cfg.fresh + 1;
  T.Var (Printf.sprintf "%s!%d" base cfg.fresh, sort)

(* Havoc the mutable state (fresh array variables) for a loop head. *)
let havoc_state cfg (st : sym_state) : sym_state =
  { arrays = SMap.mapi (fun name t -> fresh_var cfg name (T.sort_of t)) st.arrays }

let havoc_some cfg names (st : sym_state) : sym_state =
  {
    arrays =
      SMap.mapi
        (fun name t -> if List.mem name names then fresh_var cfg name (T.sort_of t) else t)
        st.arrays;
  }

(* Fresh variables matching a pattern. *)
let rec fresh_pat cfg (p : M.pat) : tv * (string * tv) list =
  match p with
  | M.Pwild -> (Tone (fresh_var cfg "wild" T.Sint), [])
  | M.Pvar (x, t) ->
    let sort = match t with Ty.Tbool -> T.Sbool | _ -> T.Sint in
    let v = Tone (fresh_var cfg x sort) in
    (v, [ (x, v) ])
  | M.Ptuple ps ->
    let vs, binds = List.split (List.map (fresh_pat cfg) ps) in
    (Ttup vs, List.concat binds)

let rec bind_pat (p : M.pat) (v : tv) (vars : tv SMap.t) : tv SMap.t =
  match (p, v) with
  | M.Pwild, _ -> vars
  | M.Pvar (x, _), v -> SMap.add x v vars
  | M.Ptuple ps, Ttup vs when List.length ps = List.length vs ->
    List.fold_left2 (fun m p v -> bind_pat p v m) vars ps vs
  | M.Ptuple [ p ], v -> bind_pat p v vars
  | M.Ptuple _, _ -> unsupported "pattern/tuple mismatch in VC"

(* Nat-typed pattern variables are non-negative: collect those facts. *)
let rec nonneg_facts (p : M.pat) (v : tv) : T.t list =
  match (p, v) with
  | M.Pvar (_, (Ty.Tnat | Ty.Tptr _)), Tone t -> [ T.le_t T.zero t ]
  | M.Ptuple ps, Ttup vs when List.length ps = List.length vs ->
    List.concat (List.map2 nonneg_facts ps vs)
  | _ -> []

(* ------------------------------------------------------------------ *)
(* WP.  [wp cfg fname env st m k] returns the VCs of executing [m] from
   symbolic state [st], where [k v st'] gives the obligations of the
   continuation.  Obligations are tracked as a conjunction; loop cuts also
   emit side VCs through [emit]. *)

type vcs = { mutable side : (string * T.t) list; fname : string; mutable loop_counter : int }

let emit vcs label t = vcs.side <- (label, t) :: vcs.side

let rec wp cfg (vcs : vcs) (env : env) (st : sym_state) (m : M.t)
    (k : tv -> sym_state -> T.t) : T.t =
  match m with
  | M.Return e | M.Gets e -> k (tr_expr env st e) st
  | M.Guard (_, g) ->
    let g' = tv_to_term (tr_expr env st g) in
    T.and_t g' (k unit_tv st)
  | M.Fail -> T.ff
  | M.Unknown t ->
    let sort = match t with Ty.Tbool -> T.Sbool | _ -> T.Sint in
    k (Tone (fresh_var cfg "unknown" sort)) st
  | M.Modify sms -> k unit_tv (List.fold_left (fun st sm -> apply_smod env st sm) st sms)
  | M.Throw _ -> unsupported "exceptional control flow in VC (function is not nothrow)"
  | M.Try _ -> unsupported "try/catch in VC"
  | M.Bind (a, p, b) ->
    wp cfg vcs env st a (fun v st' ->
        let env' = { env with vars = bind_pat p v env.vars } in
        wp cfg vcs env' st' b k)
  | M.Cond (c, a, b) ->
    let c' = tv_to_term (tr_expr env st c) in
    T.and_t
      (T.imp_t c' (wp cfg vcs env st a k))
      (T.imp_t (T.not_t c') (wp cfg vcs env st b k))
  | M.While (p, cond, body, init) -> wp_loop cfg vcs env st (p, cond, body, init) k
  | M.Call (f, args) | M.Exec_concrete (f, args) -> (
    match Hashtbl.find_opt cfg.contracts f with
    | None -> unsupported "no contract for %s" f
    | Some c ->
      let argv = List.map (tr_expr env st) args in
      let pre_ok = c.pre argv st in
      let st_post = havoc_some cfg c.modifies st in
      let result = Tone (fresh_var cfg (f ^ "_ret") T.Sint) in
      T.and_t pre_ok
        (T.imp_t (c.post argv result st st_post) (k result st_post)))

and wp_loop cfg vcs env st (p, cond, body, init) k =
  let fname = vcs.fname in
  let idx = vcs_next_loop vcs in
  let inv =
    match Hashtbl.find_opt cfg.invariants (fname, idx) with
    | Some i -> i
    | None -> unsupported "no invariant for loop %d of %s" idx fname
  in
  let init_v = tr_expr env st init in
  let init_binds =
    match bind_pat p init_v SMap.empty with m -> SMap.bindings m |> List.map (fun (x, v) -> (x, v))
  in
  (* 1. invariant holds initially, with explicit ghost witnesses *)
  let vc_init = inv.inv init_binds (inv.ghost_init init_binds st) st in
  (* 2. invariant + condition is preserved by the body (and the measure
        decreases) — under a havoc'd state and fresh ghosts *)
  let st_h = havoc_state cfg st in
  let iter_v, iter_binds = fresh_pat cfg p in
  let ghost_vars = List.map (fun (g, sort) -> (g, fresh_var cfg g sort)) inv.ghosts in
  let env_h = { env with vars = bind_pat p iter_v env.vars } in
  let nonneg = T.conj (nonneg_facts p iter_v) in
  let cond_h = tv_to_term (tr_expr env_h st_h cond) in
  let hint_facts = inv.hints iter_binds ghost_vars st_h in
  let measure_before =
    match inv.measure with
    | Some m -> Some (m iter_binds ghost_vars st_h)
    | None -> None
  in
  let body_obl =
    wp cfg vcs env_h st_h body (fun v' st' ->
        let binds' =
          match bind_pat p v' SMap.empty with m -> SMap.bindings m
        in
        let ghosts' = inv.ghost_step iter_binds ghost_vars st_h binds' st' in
        let keep = inv.inv binds' ghosts' st' in
        match (measure_before, inv.measure) with
        | Some m0, Some m ->
          T.and_t keep
            (T.and_t (T.le_t T.zero (m binds' ghosts' st')) (T.lt_t (m binds' ghosts' st') m0))
        | _ -> keep)
  in
  emit vcs
    (Printf.sprintf "%s: loop %d preserves its invariant" fname idx)
    (T.imp_t
       (T.conj ((nonneg :: inv.inv iter_binds ghost_vars st_h :: cond_h :: hint_facts)))
       body_obl);
  (* 3. invariant + negated condition implies the continuation *)
  let st_x = havoc_state cfg st in
  let exit_v, exit_binds = fresh_pat cfg p in
  let ghost_vars_x = List.map (fun (g, sort) -> (g, fresh_var cfg g sort)) inv.ghosts in
  let env_x = { env with vars = bind_pat p exit_v env.vars } in
  let nonneg_x = T.conj (nonneg_facts p exit_v) in
  let cond_x = tv_to_term (tr_expr env_x st_x cond) in
  let hint_facts_x = inv.hints exit_binds ghost_vars_x st_x in
  emit vcs
    (Printf.sprintf "%s: loop %d exit establishes the postcondition" fname idx)
    (T.imp_t
       (T.conj
          ((nonneg_x :: inv.inv exit_binds ghost_vars_x st_x :: T.not_t cond_x :: hint_facts_x)))
       (k exit_v st_x));
  vc_init

and vcs_next_loop vcs =
  (* loops are numbered in generation order within one [func_vcs] run *)
  let v = vcs.loop_counter in
  vcs.loop_counter <- v + 1;
  v

(* ------------------------------------------------------------------ *)
(* Top level: VCs for a Hoare triple about a function. *)

type triple = {
  t_pre : tv list -> sym_state -> T.t;
  t_post : tv list -> tv -> sym_state -> sym_state -> T.t;
}

let func_vcs ?(hints : T.t list = []) (cfg : config) (fname : string) (triple : triple) :
    (string * T.t) list =
  match M.find_func cfg.prog fname with
  | None -> unsupported "unknown function %s" fname
  | Some f ->
    let st0 = initial_state cfg.prog in
    let args =
      List.map
        (fun (x, t) ->
          let sort = match (t : Ty.t) with Ty.Tbool -> T.Sbool | _ -> T.Sint in
          Tone (T.Var ("arg_" ^ x, sort)))
        f.M.params
    in
    let arg_facts =
      List.concat
        (List.map2
           (fun (_, t) v ->
             match ((t : Ty.t), v) with
             | (Ty.Tnat | Ty.Tptr _), Tone tm -> [ T.le_t T.zero tm ]
             | Ty.Tword (_, w), Tone tm ->
               (* machine-word arguments denote their unsigned representative *)
               [ T.le_t T.zero tm; T.lt_t tm (pow2 (W.bits w)) ]
             | _ -> [])
           f.M.params args)
    in
    let vars =
      List.fold_left2 (fun m (x, _) v -> SMap.add x v m) SMap.empty f.M.params args
    in
    let env = { vars; lenv = cfg.prog.M.lenv } in
    let vcs = { side = []; fname; loop_counter = 0 } in
    let main =
      wp cfg vcs env st0 f.M.body (fun rv st' -> triple.t_post args rv st0 st')
    in
    let pre = T.conj ((triple.t_pre args st0 :: arg_facts) @ hints) in
    (fname ^ ": main obligation", T.imp_t pre main)
    :: List.rev_map
         (fun (l, t) -> (l, T.imp_t (T.conj (arg_facts @ hints)) t))
         vcs.side
