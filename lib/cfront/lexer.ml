(* Hand-written lexer for the C subset.  Produces a token array with
   positions; the recursive-descent parser indexes into it. *)

module B = Ac_bignum

type token =
  | INT_LIT of B.t * bool * bool (* value, unsigned suffix, long-long suffix *)
  | IDENT of string
  | KW of string (* keyword, canonical spelling *)
  | PUNCT of string (* operator or punctuation, canonical spelling *)
  | EOF

type loc_token = { tok : token; tpos : Ast.pos }

exception Lex_error of string * Ast.pos

let keywords =
  [
    "int"; "unsigned"; "signed"; "char"; "short"; "long"; "void"; "struct";
    "if"; "else"; "while"; "do"; "for"; "return"; "break"; "continue";
    "sizeof"; "NULL"; "_Bool"; "const"; "typedef"; "static"; "inline";
    "uint8_t"; "uint16_t"; "uint32_t"; "uint64_t";
    "int8_t"; "int16_t"; "int32_t"; "int64_t"; "word_t"; "bool";
    (* recognised so the parser can reject them with a clear message *)
    "goto"; "switch"; "case"; "default"; "union"; "float"; "double";
  ]

(* Longest-match-first list of multi-character punctuation. *)
let puncts3 = [ "<<="; ">>=" ]

let puncts2 =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "->"; "++"; "--";
    "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^=" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let tokenize (src : string) : loc_token list =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let pos i : Ast.pos = { line = !line; col = i - !bol + 1 } in
  let error i msg = raise (Lex_error (msg, pos i)) in
  let toks = ref [] in
  let emit i tok = toks := { tok; tpos = pos i } :: !toks in
  let i = ref 0 in
  let newline at = incr line; bol := at + 1 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      newline !i;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let start = !i in
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then error start "unterminated comment"
        else if src.[!i] = '*' && src.[!i + 1] = '/' then i := !i + 2
        else begin
          if src.[!i] = '\n' then newline !i;
          incr i;
          skip ()
        end
      in
      skip ()
    end
    else if c = '#' then begin
      (* Preprocessor lines (e.g. #include) are ignored: inputs are assumed
         to be pre-expanded, matching the C-parser pipeline. *)
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if is_digit c then begin
      let start = !i in
      let hex = c = '0' && !i + 1 < n && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X') in
      if hex then i := !i + 2;
      let digit_ok = if hex then is_hex_digit else is_digit in
      while !i < n && digit_ok src.[!i] do incr i done;
      let body = String.sub src start (!i - start) in
      let unsigned = ref false and longlong = ref false in
      let rec suffix () =
        if !i < n then
          match src.[!i] with
          | 'u' | 'U' ->
            unsigned := true;
            incr i;
            suffix ()
          | 'l' | 'L' ->
            if !i + 1 < n && (src.[!i + 1] = 'l' || src.[!i + 1] = 'L') then begin
              longlong := true;
              i := !i + 2
            end
            else incr i;
            suffix ()
          | _ -> ()
      in
      suffix ();
      if !i < n && is_ident_char src.[!i] then error start "malformed integer literal";
      let v = try B.of_string body with Invalid_argument m -> error start m in
      emit start (INT_LIT (v, !unsigned, !longlong))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let name = String.sub src start (!i - start) in
      if List.mem name keywords then emit start (KW name) else emit start (IDENT name)
    end
    else begin
      let start = !i in
      let try_punct lst len =
        if !i + len <= n then begin
          let s = String.sub src !i len in
          if List.mem s lst then begin
            emit start (PUNCT s);
            i := !i + len;
            true
          end
          else false
        end
        else false
      in
      if not (try_punct puncts3 3) then
        if not (try_punct puncts2 2) then begin
          match c with
          | '+' | '-' | '*' | '/' | '%' | '=' | '<' | '>' | '!' | '&' | '|' | '^' | '~' | '('
          | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '.' | '?' | ':' ->
            emit start (PUNCT (String.make 1 c));
            incr i
          | _ -> error start (Printf.sprintf "unexpected character %C" c)
        end
    end
  done;
  emit (n - 1) EOF;
  List.rev !toks

let token_to_string = function
  | INT_LIT (v, u, ll) ->
    B.to_string v ^ (if u then "u" else "") ^ if ll then "ll" else ""
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"
