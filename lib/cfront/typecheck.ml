module Ty = Ac_lang.Ty
module Layout = Ac_lang.Layout
(* Typechecker and elaborator: untyped AST -> typed IR.

   Implements the C99 integer model on the paper's ILP32 architecture:
   integer promotions (6.3.1.1), usual arithmetic conversions (6.3.1.8) and
   assignment conversions become explicit [Tcast] nodes, so everything
   downstream is conversion-free.  Rejects the constructs outside the
   supported subset (address of locals, function pointers, unions, ...). *)

open Ast
open Tir
module B = Ac_bignum
module W = Ac_word
module SMap = Map.Make (String)

exception Type_error of string * pos

let error pos fmt = Format.kasprintf (fun m -> raise (Type_error (m, pos))) fmt

type func_sig = { sig_ret : ctype; sig_params : (string * ctype) list }

type genv = {
  lenv : Layout.env;
  globals : ctype SMap.t;
  funcs : func_sig SMap.t;
}

type lenv_local = {
  genv : genv;
  (* scoped locals: source name -> (renamed name, type) *)
  mutable scopes : (string * ctype) SMap.t list;
  mutable locals : (string * ctype) list; (* all renamed declarations *)
  mutable fresh : int;
  ret : ctype;
}

(* ------------------------------------------------------------------ *)
(* Type utilities. *)

let is_integer = function Integer _ | Bool -> true | _ -> false
let is_pointer = function Pointer _ -> true | _ -> false
let is_scalar t = is_integer t || is_pointer t

let int_t = Integer (Ty.Signed, Ty.W32)
let uint_t = Integer (Ty.Unsigned, Ty.W32)

let rank = function Ty.W8 -> 1 | Ty.W16 -> 2 | Ty.W32 -> 3 | Ty.W64 -> 4

(* C99 6.3.1.1: integer promotion.  All sub-int types promote to signed int
   (their values always fit on ILP32). *)
let promote = function
  | Bool -> int_t
  | Integer (_, (Ty.W8 | Ty.W16)) -> int_t
  | t -> t

(* C99 6.3.1.8: usual arithmetic conversions on promoted operands. *)
let usual_arith a b =
  match (promote a, promote b) with
  | Integer (s1, w1), Integer (s2, w2) ->
    if s1 = s2 then Integer (s1, if rank w1 >= rank w2 then w1 else w2)
    else begin
      let (us, uw), (_, sw) =
        if s1 = Ty.Unsigned then ((s1, w1), (s2, w2)) else ((s2, w2), (s1, w1))
      in
      ignore us;
      if rank uw >= rank sw then Integer (Ty.Unsigned, uw)
      else if rank sw > rank uw then Integer (Ty.Signed, sw) (* signed covers unsigned *)
      else Integer (Ty.Unsigned, sw)
    end
  | _ -> invalid_arg "usual_arith: non-integer"

(* Convert the Ast-level source type to the layout-level object type. *)
let rec cty_of_ctype pos (t : ctype) : Ty.cty =
  match t with
  | Integer (s, w) -> Cword (s, w)
  | Bool -> Cword (Ty.Unsigned, Ty.W8)
  | Pointer Void -> Cptr (Cword (Ty.Unsigned, Ty.W8))
  | Pointer t' -> Cptr (cty_of_ctype pos t')
  | StructRef n -> Cstruct n
  | Void -> error pos "void is not an object type"

let ctype_of_cty (c : Ty.cty) : ctype =
  let rec go = function
    | Ty.Cword (s, w) -> Integer (s, w)
    | Ty.Cptr c -> Pointer (go c)
    | Ty.Cstruct n -> StructRef n
  in
  go c

(* ------------------------------------------------------------------ *)
(* Conversions. *)

let cast_to pos target (e : texpr) : texpr =
  if ctype_equal e.tt target then e
  else begin
    match (target, e.tt) with
    | (Integer _ | Bool), (Integer _ | Bool) -> { te = Tcast (target, e); tt = target }
    | Pointer _, (Integer _ | Bool) -> (
      (* only the constant 0 converts implicitly *)
      match e.te with
      | Tconst (v, _) when B.is_zero v -> { te = Tnull target; tt = target }
      | _ -> { te = Tcast (target, e); tt = target })
    | Pointer _, Pointer _ -> { te = Tcast (target, e); tt = target }
    | _ -> error pos "cannot convert %s to %s" (ctype_to_string e.tt) (ctype_to_string target)
  end

let promote_e pos (e : texpr) = cast_to pos (promote e.tt) e

(* Type of an integer literal (C99 6.4.4.1, simplified to the common
   dec/hex cases of systems code). *)
let literal_type pos (v : B.t) unsigned longlong =
  let fits s w = W.in_range s w v in
  if longlong then
    if unsigned then Integer (Ty.Unsigned, Ty.W64) else Integer (Ty.Signed, Ty.W64)
  else if unsigned then
    if fits Ty.Unsigned Ty.W32 then uint_t else Integer (Ty.Unsigned, Ty.W64)
  else if fits Ty.Signed Ty.W32 then int_t
  else if fits Ty.Unsigned Ty.W32 then uint_t
  else if fits Ty.Signed Ty.W64 then Integer (Ty.Signed, Ty.W64)
  else if fits Ty.Unsigned Ty.W64 then Integer (Ty.Unsigned, Ty.W64)
  else error pos "integer literal out of range"

(* ------------------------------------------------------------------ *)
(* Scoped local environment. *)

let push_scope env = env.scopes <- SMap.empty :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

let lookup_local env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> ( match SMap.find_opt name scope with Some x -> Some x | None -> go rest)
  in
  go env.scopes

let declare_local env pos name ty =
  (match env.scopes with
  | scope :: _ when SMap.mem name scope -> error pos "redeclaration of %s" name
  | _ -> ());
  let renamed =
    if lookup_local env name = None && not (SMap.mem name env.genv.globals) then name
    else begin
      env.fresh <- env.fresh + 1;
      Printf.sprintf "%s__%d" name env.fresh
    end
  in
  (match env.scopes with
  | scope :: rest -> env.scopes <- SMap.add name (renamed, ty) scope :: rest
  | [] -> assert false);
  env.locals <- (renamed, ty) :: env.locals;
  renamed

(* ------------------------------------------------------------------ *)
(* Expression elaboration. *)

let struct_of pos lenv t =
  match t with
  | StructRef n when Layout.has_struct lenv n -> n
  | StructRef n -> error pos "incomplete struct %s" n
  | _ -> error pos "member access on non-struct %s" (ctype_to_string t)

let rec elab_expr env (e : Ast.expr) : texpr =
  let pos = e.pos in
  match e.desc with
  | Const v ->
    let t = literal_type pos v false false in
    { te = Tconst (v, t); tt = t }
  | Ident name -> (
    match lookup_local env name with
    | Some (renamed, t) -> { te = Tload (Lvar (renamed, t)); tt = t }
    | None -> (
      match SMap.find_opt name env.genv.globals with
      | Some t -> { te = Tload (Lglobal (name, t)); tt = t }
      | None -> error pos "undeclared identifier %s" name))
  | Unop (Uneg, x) ->
    let x = promote_e pos (elab_expr env x) in
    if not (is_integer x.tt) then error pos "negation of %s" (ctype_to_string x.tt);
    { te = Tunop (Uneg, x); tt = x.tt }
  | Unop (Ubnot, x) ->
    let x = promote_e pos (elab_expr env x) in
    if not (is_integer x.tt) then error pos "~ of %s" (ctype_to_string x.tt);
    { te = Tunop (Ubnot, x); tt = x.tt }
  | Unop (Ulnot, x) ->
    let b = elab_cond env x in
    { te = Tofbool { te = Tunop (Ulnot, b); tt = Bool }; tt = int_t }
  | Binop ((Bland | Blor) as op, x, y) ->
    let bx = elab_cond env x and by = elab_cond env y in
    { te = Tofbool { te = Tbinop (op, bx, by); tt = Bool }; tt = int_t }
  | Binop ((Beq | Bne | Blt | Ble | Bgt | Bge) as op, x, y) ->
    let cmp = elab_comparison env pos op x y in
    { te = Tofbool cmp; tt = int_t }
  | Binop ((Bshl | Bshr) as op, x, y) ->
    let x = promote_e pos (elab_expr env x) in
    let y = promote_e pos (elab_expr env y) in
    if not (is_integer x.tt && is_integer y.tt) then error pos "shift of non-integers";
    { te = Tbinop (op, x, y); tt = x.tt }
  | Binop (Badd, x, y) -> (
    let tx = elab_expr env x and ty = elab_expr env y in
    match (tx.tt, ty.tt) with
    | Pointer _, _ when is_integer ty.tt -> { te = Tptradd (tx, promote_e pos ty); tt = tx.tt }
    | _, Pointer _ when is_integer tx.tt -> { te = Tptradd (ty, promote_e pos tx); tt = ty.tt }
    | _ -> elab_arith env pos Badd tx ty)
  | Binop (Bsub, x, y) -> (
    let tx = elab_expr env x and ty = elab_expr env y in
    match (tx.tt, ty.tt) with
    | Pointer _, _ when is_integer ty.tt ->
      let neg = { te = Tunop (Uneg, promote_e pos ty); tt = (promote_e pos ty).tt } in
      { te = Tptradd (tx, neg); tt = tx.tt }
    | Pointer _, Pointer _ -> error pos "pointer difference is not in the supported subset"
    | _ -> elab_arith env pos Bsub tx ty)
  | Binop (op, x, y) ->
    let tx = elab_expr env x and ty = elab_expr env y in
    elab_arith env pos op tx ty
  | Assign _ -> error pos "assignment is a statement in the supported subset"
  | Call _ -> error pos "function calls may not be nested inside expressions"
  | Cast (t, x) -> (
    let tx = elab_expr env x in
    match (t, tx.tt) with
    | Void, _ -> error pos "cast to void"
    | _, t' when not (is_scalar t') -> error pos "cast of non-scalar %s" (ctype_to_string t')
    | t, _ when not (is_scalar t) -> error pos "cast to non-scalar %s" (ctype_to_string t)
    | _ -> cast_to pos t { te = Tcast (t, tx); tt = t })
  | Deref x -> (
    let tx = elab_expr env x in
    match tx.tt with
    | Pointer Void -> error pos "dereference of void pointer"
    | Pointer t -> { te = Tload (Lmem (tx, t)); tt = t }
    | t -> error pos "dereference of %s" (ctype_to_string t))
  | AddrOf x -> (
    let lv = elab_lvalue env x in
    match lv with
    | Lvar _ -> error pos "address of local variable is not in the supported subset"
    | Lglobal _ -> error pos "address of global variable is not in the supported subset"
    | Lmem (p, _) -> p
    | Lfield _ ->
      let rec addr_of = function
        | Lfield (base, sname, fname, fty) ->
          let pbase = addr_of base in
          { te = Taddr (Lfield (Lmem (pbase, StructRef sname), sname, fname, fty));
            tt = Pointer fty }
        | Lmem (p, t) ->
          ignore t;
          p
        | Lvar _ | Lglobal _ ->
          error pos "address of local or global is not in the supported subset"
      in
      addr_of lv)
  | Field _ | Arrow _ | Index _ ->
    let lv = elab_lvalue env e in
    { te = Tload lv; tt = lval_type lv }
  | Cond (c, a, b) ->
    let bc = elab_cond env c in
    let ta = elab_expr env a and tb = elab_expr env b in
    if is_integer ta.tt && is_integer tb.tt then begin
      let t = usual_arith ta.tt tb.tt in
      { te = Tcond (bc, cast_to pos t ta, cast_to pos t tb); tt = t }
    end
    else if ctype_equal ta.tt tb.tt then { te = Tcond (bc, ta, tb); tt = ta.tt }
    else error pos "mismatched branches of ?:"
  | SizeofType t ->
    let size = Layout.size_of env.genv.lenv (cty_of_ctype pos t) in
    { te = Tconst (B.of_int size, uint_t); tt = uint_t }
  | SizeofExpr x ->
    let tx = elab_expr env x in
    let size = Layout.size_of env.genv.lenv (cty_of_ctype pos tx.tt) in
    { te = Tconst (B.of_int size, uint_t); tt = uint_t }

and elab_arith env pos op tx ty =
  ignore env;
  if not (is_integer tx.tt && is_integer ty.tt) then
    error pos "arithmetic on %s and %s" (ctype_to_string tx.tt) (ctype_to_string ty.tt);
  let t = usual_arith tx.tt ty.tt in
  { te = Tbinop (op, cast_to pos t tx, cast_to pos t ty); tt = t }

and elab_comparison env pos op x y : texpr =
  let tx = elab_expr env x and ty = elab_expr env y in
  match (tx.tt, ty.tt) with
  | Pointer _, Pointer _ -> { te = Tbinop (op, tx, ty); tt = Bool }
  | Pointer _, _ -> { te = Tbinop (op, tx, cast_to pos tx.tt ty); tt = Bool }
  | _, Pointer _ -> { te = Tbinop (op, cast_to pos ty.tt tx, ty); tt = Bool }
  | _ ->
    if not (is_integer tx.tt && is_integer ty.tt) then error pos "comparison of non-scalars";
    let t = usual_arith tx.tt ty.tt in
    { te = Tbinop (op, cast_to pos t tx, cast_to pos t ty); tt = Bool }

(* A C condition: any scalar, tested against zero. *)
and elab_cond env (e : Ast.expr) : texpr =
  let pos = e.pos in
  match e.desc with
  | Unop (Ulnot, x) ->
    let b = elab_cond env x in
    { te = Tunop (Ulnot, b); tt = Bool }
  | Binop ((Bland | Blor) as op, x, y) ->
    { te = Tbinop (op, elab_cond env x, elab_cond env y); tt = Bool }
  | Binop ((Beq | Bne | Blt | Ble | Bgt | Bge) as op, x, y) -> elab_comparison env pos op x y
  | _ ->
    let tx = elab_expr env e in
    if not (is_scalar tx.tt) then error pos "condition of type %s" (ctype_to_string tx.tt);
    { te = Ttobool tx; tt = Bool }

and elab_lvalue env (e : Ast.expr) : tlval =
  let pos = e.pos in
  match e.desc with
  | Ident name -> (
    match lookup_local env name with
    | Some (renamed, t) -> Lvar (renamed, t)
    | None -> (
      match SMap.find_opt name env.genv.globals with
      | Some t -> Lglobal (name, t)
      | None -> error pos "undeclared identifier %s" name))
  | Deref x -> (
    let tx = elab_expr env x in
    match tx.tt with
    | Pointer Void -> error pos "dereference of void pointer"
    | Pointer t -> Lmem (tx, t)
    | t -> error pos "dereference of %s" (ctype_to_string t))
  | Arrow (x, fname) -> (
    let tx = elab_expr env x in
    match tx.tt with
    | Pointer t ->
      let sname = struct_of pos env.genv.lenv t in
      let fty = ctype_of_cty (Layout.field_type env.genv.lenv sname fname) in
      Lfield (Lmem (tx, StructRef sname), sname, fname, fty)
    | t -> error pos "-> on %s" (ctype_to_string t))
  | Field (x, fname) ->
    let base = elab_lvalue env x in
    let sname = struct_of pos env.genv.lenv (lval_type base) in
    let fty = ctype_of_cty (Layout.field_type env.genv.lenv sname fname) in
    Lfield (base, sname, fname, fty)
  | Index (x, i) -> (
    let tx = elab_expr env x in
    let ti = promote_e pos (elab_expr env i) in
    match tx.tt with
    | Pointer Void -> error pos "indexing a void pointer"
    | Pointer t -> Lmem ({ te = Tptradd (tx, ti); tt = tx.tt }, t)
    | t -> error pos "indexing %s" (ctype_to_string t))
  | _ -> error pos "expression is not an lvalue"

(* ------------------------------------------------------------------ *)
(* Statement elaboration. *)

let rec elab_stmt env (s : Ast.stmt) : tstmt =
  let pos = s.spos in
  let at d = Tir.at pos d in
  match s.sdesc with
  | Sskip -> at Tskip
  | Sexpr { desc = Assign (lhs, { desc = Call (fname, args); pos = cpos }); _ } ->
    let lv = elab_lvalue env lhs in
    elab_call env cpos (Some lv) fname args
  | Sexpr { desc = Assign (lhs, rhs); _ } ->
    let lv = elab_lvalue env lhs in
    let rv = elab_expr env rhs in
    let target = lval_type lv in
    (match target with
    | StructRef _ ->
      if not (ctype_equal rv.tt target) then error pos "struct assignment type mismatch";
      at (Tassign (lv, rv))
    | _ -> at (Tassign (lv, cast_to pos target rv)))
  | Sexpr { desc = Call (fname, args); pos = cpos } -> elab_call env cpos None fname args
  | Sexpr e -> error e.pos "expression statement has no effect"
  | Sdecl (t, name, init) ->
    if ctype_equal t Void then error pos "void variable";
    let renamed = declare_local env pos name t in
    (match init with
    | None -> at Tskip
    | Some { desc = Call (fname, args); pos = cpos } ->
      elab_call env cpos (Some (Lvar (renamed, t))) fname args
    | Some e ->
      let rv = elab_expr env e in
      at (Tassign (Lvar (renamed, t), cast_to pos t rv)))
  | Sblock stmts ->
    push_scope env;
    let out = seq_of_list (List.map (elab_stmt env) stmts) in
    pop_scope env;
    out
  | Sif (c, a, b) -> at (Tif (elab_cond env c, elab_stmt env a, elab_stmt env b))
  | Swhile (c, body) -> at (Twhile (elab_cond env c, elab_stmt env body))
  | Sdo (body, c) ->
    (* do B while (c)  ≡  B; while (c) B *)
    let b1 = elab_stmt env body in
    let b2 = elab_stmt env body in
    at (Tseq (b1, at (Twhile (elab_cond env c, b2))))
  | Sfor (init, cond, step, body) ->
    push_scope env;
    let init_s = match init with Some s -> elab_stmt env s | None -> at Tskip in
    let cond_e =
      match cond with Some c -> elab_cond env c | None -> { te = Ttobool { te = Tconst (B.one, int_t); tt = int_t }; tt = Bool }
    in
    let step_s = match step with Some s -> elab_stmt env s | None -> at Tskip in
    let body_s = elab_stmt env body in
    pop_scope env;
    (* continue inside a for loop must run the step: we rely on the
       restriction that the subset forbids continue inside for bodies. *)
    check_no_continue pos body_s;
    at (Tseq (init_s, at (Twhile (cond_e, at (Tseq (body_s, step_s))))))
  | Sbreak -> at Tbreak
  | Scontinue -> at Tcontinue
  | Sreturn None ->
    if not (ctype_equal env.ret Void) then error pos "return without value";
    at (Treturn None)
  | Sreturn (Some e) ->
    if ctype_equal env.ret Void then error pos "return with value in void function";
    let rv = elab_expr env e in
    at (Treturn (Some (cast_to pos env.ret rv)))

and check_no_continue pos s =
  match s.ts with
  | Tcontinue -> error pos "continue inside for body is not in the supported subset"
  | Tseq (a, b) ->
    check_no_continue pos a;
    check_no_continue pos b
  | Tif (_, a, b) ->
    check_no_continue pos a;
    check_no_continue pos b
  | Twhile _ -> () (* continue inside nested while binds to that loop *)
  | _ -> ()

and elab_call env pos dest fname args =
  let at d = Tir.at pos d in
  match SMap.find_opt fname env.genv.funcs with
  | None -> error pos "call to undeclared function %s" fname
  | Some fsig ->
    if List.length args <> List.length fsig.sig_params then
      error pos "%s expects %d arguments" fname (List.length fsig.sig_params);
    let targs =
      List.map2
        (fun (_, pt) a -> cast_to pos pt (elab_expr env a))
        fsig.sig_params args
    in
    (match (dest, fsig.sig_ret) with
    | Some _, Void -> error pos "assigning result of void function %s" fname
    | Some lv, rt ->
      if not (ctype_equal (lval_type lv) rt) then begin
        (* insert a conversion through a temporary *)
        env.fresh <- env.fresh + 1;
        let tmp = Printf.sprintf "ret__%d" env.fresh in
        env.locals <- (tmp, rt) :: env.locals;
        let tmp_lv = Lvar (tmp, rt) in
        let load = { te = Tload tmp_lv; tt = rt } in
        at
          (Tseq
             ( at (Tcall (Some tmp_lv, fname, targs)),
               at (Tassign (lv, cast_to pos (lval_type lv) load)) ))
      end
      else at (Tcall (Some lv, fname, targs))
    | None, _ -> at (Tcall (dest, fname, targs)))

(* ------------------------------------------------------------------ *)
(* Program elaboration. *)

let elab_func genv (f : Ast.func) : tfunc =
  let params = List.map (fun (t, n) -> (n, t)) f.fparams in
  List.iter
    (fun (n, t) -> if ctype_equal t Void then error f.fpos "void parameter %s" n)
    params;
  let env =
    { genv; scopes = [ SMap.of_list (List.map (fun (n, t) -> (n, (n, t))) params) ];
      locals = []; fresh = 0; ret = f.fret }
  in
  push_scope env;
  let body = seq_of_list (List.map (elab_stmt env) f.fbody) in
  {
    tf_name = f.fname;
    tf_ret = f.fret;
    tf_params = params;
    tf_locals = List.rev env.locals;
    tf_body = body;
    tf_pos = f.fpos;
  }

let elab_program (prog : Ast.program) : tprog =
  (* Pass 1: struct layouts, global types, function signatures. *)
  let lenv =
    List.fold_left
      (fun lenv d ->
        match d with
        | Dstruct sd ->
          let fields =
            List.map (fun (t, n) -> (n, cty_of_ctype sd.stpos t)) sd.stfields
          in
          if Layout.has_struct lenv sd.stname then
            error sd.stpos "redefinition of struct %s" sd.stname;
          if fields = [] then error sd.stpos "empty struct %s" sd.stname;
          (* A member of an undeclared (e.g. recursively the same) struct
             type has no layout yet. *)
          (try Layout.declare_struct lenv sd.stname fields
           with Layout.Unknown_struct n ->
             error sd.stpos "field of undeclared struct %s in struct %s" n sd.stname)
        | Dglobal _ | Dfunc _ -> lenv)
      Layout.empty prog
  in
  let globals =
    List.fold_left
      (fun m d ->
        match d with
        | Dglobal g ->
          if ctype_equal g.gtype Void then error g.gpos "void global";
          if g.ginit <> None then
            error g.gpos "global initialisers are not in the supported subset";
          SMap.add g.gname g.gtype m
        | _ -> m)
      SMap.empty prog
  in
  let funcs =
    List.fold_left
      (fun m d ->
        match d with
        | Dfunc f ->
          if SMap.mem f.fname m then error f.fpos "redefinition of %s" f.fname;
          SMap.add f.fname
            { sig_ret = f.fret; sig_params = List.map (fun (t, n) -> (n, t)) f.fparams }
            m
        | _ -> m)
      SMap.empty prog
  in
  let genv = { lenv; globals; funcs } in
  (* Pass 2: function bodies. *)
  let tfuncs =
    List.filter_map (function Dfunc f -> Some (elab_func genv f) | _ -> None) prog
  in
  { tp_lenv = lenv; tp_globals = SMap.bindings globals; tp_funcs = tfuncs }

let parse_and_check (src : string) : tprog = elab_program (Parser.parse_program src)
