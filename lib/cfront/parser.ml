(* Recursive-descent parser for the C subset, with precedence climbing for
   expressions.  Mirrors the conservative front end of Norrish's parser:
   syntax the subset excludes is rejected with a position-carrying error. *)

open Ast
module B = Ac_bignum

exception Parse_error of string * pos

type state = { toks : Lexer.loc_token array; mutable cur : int }

let error_at pos fmt = Format.kasprintf (fun m -> raise (Parse_error (m, pos))) fmt

let peek st = st.toks.(st.cur).tok
let peek2 st = if st.cur + 1 < Array.length st.toks then st.toks.(st.cur + 1).tok else Lexer.EOF
let pos_of st = st.toks.(st.cur).tpos
let advance st = st.cur <- min (st.cur + 1) (Array.length st.toks - 1)

let error st fmt = error_at (pos_of st) fmt

let expect_punct st s =
  match peek st with
  | Lexer.PUNCT p when String.equal p s -> advance st
  | t -> error st "expected '%s', found '%s'" s (Lexer.token_to_string t)

let expect_kw st s =
  match peek st with
  | Lexer.KW k when String.equal k s -> advance st
  | t -> error st "expected '%s', found '%s'" s (Lexer.token_to_string t)

let accept_punct st s =
  match peek st with
  | Lexer.PUNCT p when String.equal p s ->
    advance st;
    true
  | _ -> false

let accept_kw st s =
  match peek st with
  | Lexer.KW k when String.equal k s ->
    advance st;
    true
  | _ -> false

let expect_ident st =
  match peek st with
  | Lexer.IDENT name ->
    advance st;
    name
  | t -> error st "expected identifier, found '%s'" (Lexer.token_to_string t)

(* ------------------------------------------------------------------ *)
(* Types.  A starting type keyword sequence followed by '*'s. *)

let fixed_width_types =
  [
    ("uint8_t", Integer (Unsigned, W8));
    ("uint16_t", Integer (Unsigned, W16));
    ("uint32_t", Integer (Unsigned, W32));
    ("uint64_t", Integer (Unsigned, W64));
    ("int8_t", Integer (Signed, W8));
    ("int16_t", Integer (Signed, W16));
    ("int32_t", Integer (Signed, W32));
    ("int64_t", Integer (Signed, W64));
    ("word_t", Integer (Unsigned, W32));
    ("bool", Bool);
    ("_Bool", Bool);
    ("void", Void);
  ]

let starts_type st =
  match peek st with
  | Lexer.KW k ->
    List.mem_assoc k fixed_width_types
    || List.mem k [ "int"; "unsigned"; "signed"; "char"; "short"; "long"; "struct"; "const" ]
  | _ -> false

(* Parse a base type: handles the multi-word integer type names of C.  The
   architecture is ILP32 (paper: "matches a two's-complement 32-bit system"),
   so long = 32 bits and long long = 64 bits. *)
let parse_base_type st =
  while accept_kw st "const" do () done;
  let t =
    match peek st with
    | Lexer.KW k when List.mem_assoc k fixed_width_types ->
      advance st;
      List.assoc k fixed_width_types
    | Lexer.KW "struct" ->
      advance st;
      let name = expect_ident st in
      StructRef name
    | Lexer.KW ("int" | "unsigned" | "signed" | "char" | "short" | "long") ->
      (* Collect the keyword run and classify it. *)
      let rec collect acc =
        match peek st with
        | Lexer.KW (("int" | "unsigned" | "signed" | "char" | "short" | "long") as k) ->
          advance st;
          collect (k :: acc)
        | _ -> List.rev acc
      in
      let kws = collect [] in
      let sign = if List.mem "unsigned" kws then Ty.Unsigned else Ty.Signed in
      let longs = List.length (List.filter (String.equal "long") kws) in
      let width =
        if List.mem "char" kws then Ty.W8
        else if List.mem "short" kws then Ty.W16
        else if longs >= 2 then Ty.W64
        else Ty.W32
      in
      Integer (sign, width)
    | Lexer.KW (("union" | "float" | "double") as kw) ->
      error st "'%s' is not in the supported C subset (paper Sec 2)" kw
    | t -> error st "expected type, found '%s'" (Lexer.token_to_string t)
  in
  while accept_kw st "const" do () done;
  t

let parse_type st =
  let base = parse_base_type st in
  let rec stars t = if accept_punct st "*" then stars (Pointer t) else t in
  let t = stars base in
  while accept_kw st "const" do () done;
  let rec stars2 t = if accept_punct st "*" then stars2 (Pointer t) else t in
  stars2 t

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing. *)

let binop_table =
  (* token, constructor, precedence, right-assoc *)
  [
    ("*", Bmul, 13); ("/", Bdiv, 13); ("%", Bmod, 13);
    ("+", Badd, 12); ("-", Bsub, 12);
    ("<<", Bshl, 11); (">>", Bshr, 11);
    ("<", Blt, 10); ("<=", Ble, 10); (">", Bgt, 10); (">=", Bge, 10);
    ("==", Beq, 9); ("!=", Bne, 9);
    ("&", Bband, 8); ("^", Bbxor, 7); ("|", Bbor, 6);
    ("&&", Bland, 5); ("||", Blor, 4);
  ]

let rec parse_expr st = parse_assignment st

and parse_assignment st =
  let lhs = parse_conditional st in
  let pos = pos_of st in
  let compound op =
    advance st;
    let rhs = parse_assignment st in
    { desc = Assign (lhs, { desc = Binop (op, lhs, rhs); pos }); pos }
  in
  match peek st with
  | Lexer.PUNCT "=" ->
    advance st;
    let rhs = parse_assignment st in
    { desc = Assign (lhs, rhs); pos }
  | Lexer.PUNCT "+=" -> compound Badd
  | Lexer.PUNCT "-=" -> compound Bsub
  | Lexer.PUNCT "*=" -> compound Bmul
  | Lexer.PUNCT "/=" -> compound Bdiv
  | Lexer.PUNCT "%=" -> compound Bmod
  | Lexer.PUNCT "&=" -> compound Bband
  | Lexer.PUNCT "|=" -> compound Bbor
  | Lexer.PUNCT "^=" -> compound Bbxor
  | Lexer.PUNCT "<<=" -> compound Bshl
  | Lexer.PUNCT ">>=" -> compound Bshr
  | _ -> lhs

and parse_conditional st =
  let c = parse_binary st 0 in
  if accept_punct st "?" then begin
    let pos = pos_of st in
    let a = parse_expr st in
    expect_punct st ":";
    let b = parse_conditional st in
    { desc = Cond (c, a, b); pos }
  end
  else c

and parse_binary st min_prec =
  let rec loop lhs =
    match peek st with
    | Lexer.PUNCT p -> (
      match List.find_opt (fun (s, _, _) -> String.equal s p) binop_table with
      | Some (_, op, prec) when prec >= min_prec ->
        let pos = pos_of st in
        advance st;
        let rhs = parse_unary_chain st (prec + 1) in
        loop { desc = Binop (op, lhs, rhs); pos }
      | _ -> lhs)
    | _ -> lhs
  in
  loop (parse_unary_chain st min_prec)

and parse_unary_chain st min_prec =
  let lhs = parse_unary st in
  (* continue climbing at this precedence *)
  let rec loop lhs =
    match peek st with
    | Lexer.PUNCT p -> (
      match List.find_opt (fun (s, _, _) -> String.equal s p) binop_table with
      | Some (_, op, prec) when prec >= min_prec ->
        let pos = pos_of st in
        advance st;
        let rhs = parse_unary_chain st (prec + 1) in
        loop { desc = Binop (op, lhs, rhs); pos }
      | _ -> lhs)
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  let pos = pos_of st in
  match peek st with
  | Lexer.PUNCT "-" ->
    advance st;
    { desc = Unop (Uneg, parse_unary st); pos }
  | Lexer.PUNCT "+" ->
    advance st;
    parse_unary st
  | Lexer.PUNCT "~" ->
    advance st;
    { desc = Unop (Ubnot, parse_unary st); pos }
  | Lexer.PUNCT "!" ->
    advance st;
    { desc = Unop (Ulnot, parse_unary st); pos }
  | Lexer.PUNCT "*" ->
    advance st;
    { desc = Deref (parse_unary st); pos }
  | Lexer.PUNCT "&" ->
    advance st;
    { desc = AddrOf (parse_unary st); pos }
  | Lexer.PUNCT "++" ->
    advance st;
    let e = parse_unary st in
    { desc = Assign (e, { desc = Binop (Badd, e, { desc = Const B.one; pos }); pos }); pos }
  | Lexer.PUNCT "--" ->
    advance st;
    let e = parse_unary st in
    { desc = Assign (e, { desc = Binop (Bsub, e, { desc = Const B.one; pos }); pos }); pos }
  | Lexer.KW "sizeof" ->
    advance st;
    if accept_punct st "(" then begin
      if starts_type st then begin
        let t = parse_type st in
        expect_punct st ")";
        { desc = SizeofType t; pos }
      end
      else begin
        let e = parse_expr st in
        expect_punct st ")";
        { desc = SizeofExpr e; pos }
      end
    end
    else { desc = SizeofExpr (parse_unary st); pos }
  | Lexer.PUNCT "(" when starts_type_after_paren st ->
    advance st;
    let t = parse_type st in
    expect_punct st ")";
    { desc = Cast (t, parse_unary st); pos }
  | _ -> parse_postfix st

and starts_type_after_paren st =
  (* lookahead: '(' followed by a type keyword *)
  match peek2 st with
  | Lexer.KW k ->
    List.mem_assoc k fixed_width_types
    || List.mem k [ "int"; "unsigned"; "signed"; "char"; "short"; "long"; "struct"; "const" ]
  | _ -> false

and parse_postfix st =
  let e = parse_primary st in
  let rec loop e =
    let pos = pos_of st in
    match peek st with
    | Lexer.PUNCT "." ->
      advance st;
      loop { desc = Field (e, expect_ident st); pos }
    | Lexer.PUNCT "->" ->
      advance st;
      loop { desc = Arrow (e, expect_ident st); pos }
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      loop { desc = Index (e, idx); pos }
    | Lexer.PUNCT "++" ->
      (* Post-increment is only supported as a statement; desugared there. *)
      advance st;
      loop
        {
          desc = Assign (e, { desc = Binop (Badd, e, { desc = Const B.one; pos }); pos });
          pos;
        }
    | Lexer.PUNCT "--" ->
      advance st;
      loop
        {
          desc = Assign (e, { desc = Binop (Bsub, e, { desc = Const B.one; pos }); pos });
          pos;
        }
    | _ -> e
  in
  loop e

and parse_primary st =
  let pos = pos_of st in
  match peek st with
  | Lexer.INT_LIT (v, _, _) ->
    advance st;
    { desc = Const v; pos }
  | Lexer.KW "NULL" ->
    advance st;
    { desc = Const B.zero; pos }
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.PUNCT "(" ->
      advance st;
      let args = parse_args st in
      { desc = Call (name, args); pos }
    | _ -> { desc = Ident name; pos })
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | t -> error st "expected expression, found '%s'" (Lexer.token_to_string t)

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let rec loop acc =
      let e = parse_expr st in
      if accept_punct st "," then loop (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    loop []
  end

(* ------------------------------------------------------------------ *)
(* Statements. *)

let rec parse_stmt st : stmt =
  let spos = pos_of st in
  match peek st with
  | Lexer.KW (("goto" | "switch" | "case" | "default") as kw) ->
    error st "'%s' is not in the supported C subset (paper Sec 2)" kw
  | Lexer.PUNCT ";" ->
    advance st;
    { sdesc = Sskip; spos }
  | Lexer.PUNCT "{" -> { sdesc = Sblock (parse_block st); spos }
  | Lexer.KW "if" ->
    advance st;
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    let then_s = parse_stmt st in
    let else_s =
      if accept_kw st "else" then parse_stmt st else { sdesc = Sskip; spos }
    in
    { sdesc = Sif (c, then_s, else_s); spos }
  | Lexer.KW "while" ->
    advance st;
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    { sdesc = Swhile (c, parse_stmt st); spos }
  | Lexer.KW "do" ->
    advance st;
    let body = parse_stmt st in
    expect_kw st "while";
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    expect_punct st ";";
    { sdesc = Sdo (body, c); spos }
  | Lexer.KW "for" ->
    advance st;
    expect_punct st "(";
    let init =
      if accept_punct st ";" then None
      else begin
        let s =
          if starts_type st then parse_decl_stmt st
          else begin
            let e = parse_expr st in
            expect_punct st ";";
            { sdesc = Sexpr e; spos }
          end
        in
        Some s
      end
    in
    let cond = if accept_punct st ";" then None
      else begin
        let e = parse_expr st in
        expect_punct st ";";
        Some e
      end
    in
    let step =
      if accept_punct st ")" then None
      else begin
        let e = parse_expr st in
        expect_punct st ")";
        Some { sdesc = Sexpr e; spos }
      end
    in
    { sdesc = Sfor (init, cond, step, parse_stmt st); spos }
  | Lexer.KW "break" ->
    advance st;
    expect_punct st ";";
    { sdesc = Sbreak; spos }
  | Lexer.KW "continue" ->
    advance st;
    expect_punct st ";";
    { sdesc = Scontinue; spos }
  | Lexer.KW "return" ->
    advance st;
    if accept_punct st ";" then { sdesc = Sreturn None; spos }
    else begin
      let e = parse_expr st in
      expect_punct st ";";
      { sdesc = Sreturn (Some e); spos }
    end
  | _ when starts_type st -> parse_decl_stmt st
  | _ ->
    let e = parse_expr st in
    expect_punct st ";";
    { sdesc = Sexpr e; spos }

and parse_decl_stmt st : stmt =
  match parse_decl_group st with
  | [ s ] -> s
  | group ->
    (* A multi-declarator declaration in single-statement position; the
       grouping block is harmless because nothing follows it there. *)
    { sdesc = Sblock group; spos = (List.hd group).spos }

(* One declaration with possibly several declarators:
   struct node *t = root, *p = NULL, *q; *)
and parse_decl_group st : stmt list =
  let spos = pos_of st in
  let base = parse_base_type st in
  let rec declarators acc =
    let rec stars t = if accept_punct st "*" then stars (Pointer t) else t in
    let t = stars base in
    let name = expect_ident st in
    let init = if accept_punct st "=" then Some (parse_expr st) else None in
    let decl = { sdesc = Sdecl (t, name, init); spos } in
    if accept_punct st "," then declarators (decl :: acc)
    else begin
      expect_punct st ";";
      List.rev (decl :: acc)
    end
  in
  declarators []

and parse_block st : stmt list =
  expect_punct st "{";
  let rec loop acc =
    if accept_punct st "}" then List.rev acc
    else if starts_type st then loop (List.rev_append (parse_decl_group st) acc)
    else loop (parse_stmt st :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Top level: struct declarations, globals, functions. *)

let parse_struct_decl st : struct_decl =
  let stpos = pos_of st in
  expect_kw st "struct";
  let stname = expect_ident st in
  expect_punct st "{";
  let rec fields acc =
    if accept_punct st "}" then List.rev acc
    else begin
      let t = parse_type st in
      let name = expect_ident st in
      expect_punct st ";";
      fields ((t, name) :: acc)
    end
  in
  let stfields = fields [] in
  expect_punct st ";";
  { stname; stfields; stpos }

let parse_top st : decl =
  while accept_kw st "static" || accept_kw st "inline" do () done;
  match (peek st, peek2 st) with
  | Lexer.KW "struct", Lexer.IDENT _ when (match st.toks.(st.cur + 2).tok with
      | Lexer.PUNCT "{" -> true
      | _ -> false) ->
    Dstruct (parse_struct_decl st)
  | _ ->
    let gpos = pos_of st in
    let t = parse_type st in
    let name = expect_ident st in
    if accept_punct st "(" then begin
      (* function definition *)
      let params =
        if accept_punct st ")" then []
        else begin
          let rec loop acc =
            if accept_kw st "void" && (match peek st with Lexer.PUNCT ")" -> true | _ -> false)
            then begin
              expect_punct st ")";
              List.rev acc
            end
            else begin
              let pt = parse_type st in
              let pn = expect_ident st in
              if accept_punct st "," then loop ((pt, pn) :: acc)
              else begin
                expect_punct st ")";
                List.rev ((pt, pn) :: acc)
              end
            end
          in
          loop []
        end
      in
      let body = parse_block st in
      Dfunc { fname = name; fret = t; fparams = params; fbody = body; fpos = gpos }
    end
    else begin
      let init = if accept_punct st "=" then Some (parse_expr st) else None in
      expect_punct st ";";
      Dglobal { gname = name; gtype = t; ginit = init; gpos }
    end

let parse_program (src : string) : program =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; cur = 0 } in
  let rec loop acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | _ -> loop (parse_top st :: acc)
  in
  loop []
