module Ty = Ac_lang.Ty
module Layout = Ac_lang.Layout
(* Abstract syntax of the supported C subset, as parsed (untyped).

   The subset matches the paper (Sec 2): loops, function calls, type casting,
   pointer arithmetic, structures and recursion are supported; references to
   local variables, goto, switch fall-through, unions, floating point and
   function pointers are not. *)

type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }
let pp_pos fmt p = Format.fprintf fmt "%d:%d" p.line p.col

(* Source-level type expressions. *)
type ctype =
  | Void
  | Bool (* _Bool *)
  | Integer of Ty.sign * Ty.width
  | Pointer of ctype
  | StructRef of string

type unop = Uneg | Ubnot | Ulnot

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Bmod
  | Bshl
  | Bshr
  | Bband
  | Bbor
  | Bbxor
  | Beq
  | Bne
  | Blt
  | Ble
  | Bgt
  | Bge
  | Bland
  | Blor

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Const of Ac_bignum.t
  | Ident of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr (* lvalue = rvalue; also feeds +=, ++ desugaring *)
  | Call of string * expr list
  | Cast of ctype * expr
  | Deref of expr
  | AddrOf of expr
  | Field of expr * string (* e.f *)
  | Arrow of expr * string (* e->f *)
  | Index of expr * expr (* e[i] *)
  | Cond of expr * expr * expr (* c ? a : b *)
  | SizeofType of ctype
  | SizeofExpr of expr

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Sskip
  | Sexpr of expr (* expression statement: assignment or call *)
  | Sdecl of ctype * string * expr option (* local declaration *)
  | Sblock of stmt list
  | Sif of expr * stmt * stmt
  | Swhile of expr * stmt
  | Sdo of stmt * expr (* do body while (cond) *)
  | Sfor of stmt option * expr option * stmt option * stmt
  | Sbreak
  | Scontinue
  | Sreturn of expr option

type func = {
  fname : string;
  fret : ctype;
  fparams : (ctype * string) list;
  fbody : stmt list;
  fpos : pos;
}

type global_decl = {
  gname : string;
  gtype : ctype;
  ginit : expr option;
  gpos : pos;
}

type struct_decl = {
  stname : string;
  stfields : (ctype * string) list;
  stpos : pos;
}

type decl = Dstruct of struct_decl | Dglobal of global_decl | Dfunc of func

type program = decl list

(* ------------------------------------------------------------------ *)

let rec pp_ctype fmt = function
  | Void -> Format.pp_print_string fmt "void"
  | Bool -> Format.pp_print_string fmt "_Bool"
  | Integer (Unsigned, W8) -> Format.pp_print_string fmt "unsigned char"
  | Integer (Signed, W8) -> Format.pp_print_string fmt "char"
  | Integer (Unsigned, W16) -> Format.pp_print_string fmt "unsigned short"
  | Integer (Signed, W16) -> Format.pp_print_string fmt "short"
  | Integer (Unsigned, W32) -> Format.pp_print_string fmt "unsigned int"
  | Integer (Signed, W32) -> Format.pp_print_string fmt "int"
  | Integer (Unsigned, W64) -> Format.pp_print_string fmt "unsigned long long"
  | Integer (Signed, W64) -> Format.pp_print_string fmt "long long"
  | Pointer t -> Format.fprintf fmt "%a *" pp_ctype t
  | StructRef n -> Format.fprintf fmt "struct %s" n

let ctype_to_string t = Format.asprintf "%a" pp_ctype t

let ctype_equal a b =
  let rec go a b =
    match (a, b) with
    | Void, Void | Bool, Bool -> true
    | Integer (s1, w1), Integer (s2, w2) -> s1 = s2 && w1 = w2
    | Pointer x, Pointer y -> go x y
    | StructRef n, StructRef m -> String.equal n m
    | (Void | Bool | Integer _ | Pointer _ | StructRef _), _ -> false
  in
  go a b
