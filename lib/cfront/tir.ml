module Ty = Ac_lang.Ty
module Layout = Ac_lang.Layout
(* Typed intermediate representation of C, produced by the typechecker.

   Every implicit C conversion (integer promotion, usual arithmetic
   conversions, assignment conversion, scalar-to-boolean tests) has been made
   explicit, so the Simpl translation can be entirely local.  Booleans are a
   distinct type here (conditions are [Ttobool]-wrapped), even though C
   conflates them with [int]; [Tofbool] re-injects 0/1 where a comparison is
   used as an integer. *)

module B = Ac_bignum

type ctype = Ast.ctype

type texpr = { te : texpr_desc; tt : ctype }

and texpr_desc =
  | Tconst of B.t * ctype
  | Tnull of ctype (* null pointer of type Pointer t *)
  | Tvar of string
  | Tglobal of string
  | Tunop of Ast.unop * texpr
  | Tbinop of Ast.binop * texpr * texpr (* operands already converted *)
  | Tcast of ctype * texpr
  | Tload of tlval (* read an lvalue *)
  | Taddr of tlval (* address of a memory lvalue *)
  | Tptradd of texpr * texpr (* pointer + element count *)
  | Ttobool of texpr (* scalar ≠ 0 *)
  | Tofbool of texpr (* bool -> 0/1 of type int *)
  | Tcond of texpr * texpr * texpr (* c ? a : b, c boolean *)

and tlval =
  | Lvar of string * ctype
  | Lglobal of string * ctype
  | Lmem of texpr * ctype (* object at address; texpr : Pointer ctype *)
  | Lfield of tlval * string * string * ctype (* base, struct name, field, field type *)

(* Statements carry the source position of the statement they came from, so
   diagnostics downstream of the typechecker (`acc lint` in particular) can
   report file:line:col instead of bare function names. *)
type tstmt = { ts : tstmt_desc; tsp : Ast.pos }

and tstmt_desc =
  | Tskip
  | Tassign of tlval * texpr
  | Tcall of tlval option * string * texpr list
  | Tseq of tstmt * tstmt
  | Tif of texpr * tstmt * tstmt
  | Twhile of texpr * tstmt
  | Tbreak
  | Tcontinue
  | Treturn of texpr option

let at (tsp : Ast.pos) (ts : tstmt_desc) : tstmt = { ts; tsp }

type tfunc = {
  tf_name : string;
  tf_ret : ctype; (* Void for procedures *)
  tf_params : (string * ctype) list;
  tf_locals : (string * ctype) list; (* declared locals after renaming *)
  tf_body : tstmt;
  tf_pos : Ast.pos; (* position of the function definition *)
}

type tprog = {
  tp_lenv : Layout.env;
  tp_globals : (string * ctype) list;
  tp_funcs : tfunc list;
}

let lval_type = function
  | Lvar (_, t) | Lglobal (_, t) | Lmem (_, t) | Lfield (_, _, _, t) -> t

let rec seq_of_list = function
  | [] -> { ts = Tskip; tsp = Ast.no_pos }
  | [ s ] -> s
  | s :: rest -> { ts = Tseq (s, seq_of_list rest); tsp = s.tsp }

let find_func prog name = List.find_opt (fun f -> String.equal f.tf_name name) prog.tp_funcs

(* Source lines of code of a program, the paper's LoC metric: non-blank,
   non-comment-only lines. *)
let source_loc (src : string) =
  let lines = String.split_on_char '\n' src in
  let in_comment = ref false in
  let count = ref 0 in
  List.iter
    (fun line ->
      let significant = ref false in
      let n = String.length line in
      let i = ref 0 in
      while !i < n do
        if !in_comment then begin
          if !i + 1 < n && line.[!i] = '*' && line.[!i + 1] = '/' then begin
            in_comment := false;
            i := !i + 2
          end
          else incr i
        end
        else if !i + 1 < n && line.[!i] = '/' && line.[!i + 1] = '*' then begin
          in_comment := true;
          i := !i + 2
        end
        else if !i + 1 < n && line.[!i] = '/' && line.[!i + 1] = '/' then i := n
        else begin
          if line.[!i] <> ' ' && line.[!i] <> '\t' && line.[!i] <> '\r' then significant := true;
          incr i
        end
      done;
      if !significant then incr count)
    lines;
  !count
