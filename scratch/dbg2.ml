module T = Ac_prover.Term
module B = Ac_bignum
module Solver = Ac_prover.Solver
let () =
  (* minimal: x in [1, 2^32), m = (x - 1 + 2^32) mod 2^32 |- m = x - 1 *)
  let x = T.Var ("x", T.Sint) in
  let m = T.App (T.Mod, [ T.add_t (T.sub_t x T.one) (T.Int (B.pow2 32)); T.Int (B.pow2 32) ]) in
  let hyps = [ T.le_t T.one x; T.lt_t x (T.Int (B.pow2 32)) ] in
  (match Solver.prove ~hyps (T.eq_t m (T.sub_t x T.one)) with
   | Solver.Proved, st -> Printf.printf "proved (%d branches)\n" st.Solver.branches
   | Solver.Unknown _, st -> Printf.printf "unknown (%d branches)\n" st.Solver.branches
   | Solver.Refuted _, _ -> print_endline "refuted");
  (* smaller modulus to rule out bignum-size issues *)
  let m8 = T.App (T.Mod, [ T.add_t (T.sub_t x T.one) (T.int_of 8); T.int_of 8 ]) in
  let hyps8 = [ T.le_t T.one x; T.lt_t x (T.int_of 8) ] in
  (match Solver.prove ~hyps:hyps8 (T.eq_t m8 (T.sub_t x T.one)) with
   | Solver.Proved, st -> Printf.printf "m8 proved (%d branches)\n" st.Solver.branches
   | Solver.Unknown _, st -> Printf.printf "m8 unknown (%d branches)\n" st.Solver.branches
   | _ -> print_endline "m8 refuted")
