(* Regenerate corpus/*.c from the in-tree case sources (Csources.all), so
   the CLI-facing corpus and the library test corpus cannot drift. *)
let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "corpus" in
  List.iter
    (fun (name, src) ->
      let oc = open_out (Filename.concat dir (name ^ ".c")) in
      output_string oc src;
      close_out oc;
      print_endline (Filename.concat dir (name ^ ".c")))
    Ac_cases.Csources.all
