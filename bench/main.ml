(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (run with an experiment name to run just one), then times the
   key pipeline stages with Bechamel.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table5     # one experiment
     dune exec bench/main.exe -- --list  # list experiments *)

open Bechamel

let timing_tests () =
  let pipeline src () = ignore (Autocorres.Driver.run src) in
  let parse src () = ignore (Ac_simpl.C2simpl.parse src) in
  let echronos = Ac_codegen.generate Ac_codegen.echronos_like in
  let footnote2_nat () =
    let module T = Ac_prover.Term in
    let l = T.Var ("l", T.Sint) and r = T.Var ("r", T.Sint) in
    let m = T.App (T.Div, [ T.add_t l r; T.int_of 2 ]) in
    ignore
      (Ac_prover.Solver.prove
         ~hyps:[ T.le_t T.zero l; T.le_t T.zero r; T.lt_t l r ]
         (T.and_t (T.le_t l m) (T.lt_t m r)))
  in
  let reverse_proof () = ignore (Ac_cases.Reverse_proof.run ~check_lemmas:false ()) in
  let discharge_pass =
    (* Isolate the abstract-interpretation pass: translate without it, then
       time certificate inference + kernel-checked discharge on the L2 bodies. *)
    let module Driver = Autocorres.Driver in
    let options =
      { Driver.default_options with
        defaults = { Driver.default_func_options with Driver.discharge_guards = false } }
    in
    let res =
      Driver.run ~options
        (Ac_cases.Csources.shift_guarded_c ^ Ac_cases.Csources.div_guarded_c)
    in
    let l2s = List.map (fun fr -> fr.Driver.fr_l2) res.Driver.funcs in
    fun () ->
      List.iter (fun f -> ignore (Ac_analysis.discharge_func res.Driver.ctx f)) l2s
  in
  Test.make_grouped ~name:"autocorres"
    [
      Test.make ~name:"table5: parse echronos-like" (Staged.stage (parse echronos));
      Test.make ~name:"table5: pipeline echronos-like" (Staged.stage (pipeline echronos));
      Test.make ~name:"fig2: pipeline max" (Staged.stage (pipeline Ac_cases.Csources.max_c));
      Test.make ~name:"fig6: pipeline reverse"
        (Staged.stage (pipeline Ac_cases.Csources.reverse_c));
      Test.make ~name:"fig8: pipeline schorr_waite"
        (Staged.stage (pipeline Ac_cases.Csources.schorr_waite_c));
      Test.make ~name:"footnote2: auto on the nat midpoint VC"
        (Staged.stage footnote2_nat);
      Test.make ~name:"fig6: reversal proof end-to-end" (Staged.stage reverse_proof);
      Test.make ~name:"analysis: guard-discharge pass (cert + kernel check)"
        (Staged.stage discharge_pass);
    ]

let run_timings () =
  Experiments.header "Bechamel timings (OLS estimate)";
  let cfg = Benchmark.cfg ~limit:60 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] (timing_tests ()) in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ t ] -> Printf.sprintf "%.3f ms" (t /. 1e6)
        | _ -> "n/a"
      in
      rows := [ name; est ] :: !rows)
    results;
  print_string
    (Ac_stats.render_table ~header:[ "Benchmark"; "Time/run" ]
       (List.sort compare !rows))

(* One experiment failing (or one function inside it) must not take down
   the rest of the harness: record the failure and carry on. *)
let isolated name f failures () =
  try f ()
  with e ->
    Printf.printf "\nEXPERIMENT %s FAILED: %s\n" name (Printexc.to_string e);
    failures := name :: !failures

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [ "--list" ] ->
    List.iter (fun (n, _) -> print_endline n) Experiments.all;
    print_endline "timings"
  | [] ->
    let failures = ref [] in
    List.iter (fun (name, f) -> isolated name f failures ()) Experiments.all;
    isolated "timings" run_timings failures ();
    (match List.rev !failures with
    | [] -> print_endline "\nAll experiments completed."
    | fs ->
      Printf.printf "\n%d experiment(s) failed: %s\n" (List.length fs)
        (String.concat ", " fs);
      exit 1)
  | names ->
    List.iter
      (fun name ->
        if name = "timings" then run_timings ()
        else begin
          match List.assoc_opt name Experiments.all with
          | Some f -> f ()
          | None ->
            Printf.eprintf "unknown experiment %s (try --list)\n" name;
            exit 1
        end)
      names
