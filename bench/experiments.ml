(* One reproduction per table and figure of the paper's evaluation.  Each
   experiment prints what the paper reports next to what this implementation
   measures; EXPERIMENTS.md records the comparison. *)

module B = Ac_bignum
module W = Ac_word
module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module Value = Ac_lang.Value
module M = Ac_monad.M
module Mprint = Ac_monad.Mprint
module Ir = Ac_simpl.Ir
module T = Ac_prover.Term
module Solver = Ac_prover.Solver
module Vc = Ac_hoare.Vc
module Driver = Autocorres.Driver
module Thm = Ac_kernel.Thm
module Store = Ac_store.Store
open Ac_cases

let header title = Printf.printf "\n===================== %s =====================\n\n" title

let final_output ?options src fname =
  let res = Driver.run ?options src in
  match Driver.find_result res fname with
  | Some fr -> Mprint.func_to_string fr.Driver.fr_final
  | None -> "<missing>"

(* ------------------------------------------------------------------ *)

let fig1 () =
  header "Fig 1: pipeline phases";
  let res = Driver.run Csources.max_c in
  let fr = Option.get (Driver.find_result res "max") in
  Printf.printf "C source:\n%s\n" Csources.max_c;
  Printf.printf "L1 (monadic conversion):\n%s\n" (Mprint.func_to_string fr.Driver.fr_l1);
  Printf.printf "L2 (flow simplification + local lifting):\n%s\n"
    (Mprint.func_to_string fr.Driver.fr_l2);
  (match fr.Driver.fr_hl with
  | Some f -> Printf.printf "HL (heap abstraction):\n%s\n" (Mprint.func_to_string f)
  | None -> ());
  match fr.Driver.fr_wa with
  | Some f -> Printf.printf "WA (word abstraction):\n%s\n" (Mprint.func_to_string f)
  | None -> ()

let fig2 () =
  header "Fig 2: max — C, Simpl translation, AutoCorres output";
  let res = Driver.run Csources.max_c in
  let fr = Option.get (Driver.find_result res "max") in
  Printf.printf "C source:\n%s\n" Csources.max_c;
  Printf.printf "Simpl translation (C parser output):\n%s\n"
    (Ac_simpl.Print.func_to_string fr.Driver.fr_simpl);
  Printf.printf "AutoCorres output:\n%s\n" (Mprint.func_to_string fr.Driver.fr_final);
  Printf.printf "Paper: max' a b == if a < b then b else a  (on ideal integers)\n"

let table1 () =
  header "Table 1: Simpl constructs and their monadic counterparts";
  print_string
    (Ac_stats.render_table
       ~header:[ "Simpl"; "Monad"; "Definition" ]
       [
         [ "-"; "return x"; "λs. ({(Normal x, s)}, False)" ];
         [ "Skip"; "skip"; "return ()" ];
         [ "Basic m"; "modify m"; "λs. ({(Normal (), m s)}, False)" ];
         [ "Throw"; "throw x"; "λs. ({(Except x, s)}, False)" ];
         [ "Cond c L R"; "condition c L R"; "λs. if c s then L s else R s" ];
         [ "-"; "fail"; "λs. (∅, True)" ];
         [ "Guard t g B"; "guard g"; "condition g skip fail" ];
       ]);
  (* demonstrate the pairing on a real translation *)
  let res = Driver.run "int f(int a) { if (a < 1) return 1; return a; }" in
  let fr = Option.get (Driver.find_result res "f") in
  Printf.printf "L1 image of an if/return function (every Simpl construct maps by rule):\n%s\n"
    (Mprint.func_to_string fr.Driver.fr_l1);
  Printf.printf "L1 derivation: %d rule applications, revalidated: %b\n"
    (Thm.size fr.Driver.fr_l1_thm)
    (Ac_kernel.Thm.check res.Driver.ctx fr.Driver.fr_l1_thm = Ok ())

let table2 () =
  header "Table 2: incorrect word identities and their counter-examples";
  let u32 v = W.of_bignum W.W32 v in
  let equations :
      (string * string * (W.t -> bool) * (unit -> bool)) list =
    (* name, paper's counterexample, word-level check (false at cex),
       ideal-level version (must hold) *)
    [
      ( "s = s + 1 - 1",
        "s = 2^31 - 1 (undefined)",
        (fun s -> not (W.add_overflows W.Signed s (W.of_int W.W32 1))),
        fun () ->
          (* over ℤ the identity is unconditional *)
          Solver.holds
            (T.eq_t (T.Var ("s", T.Sint))
               (T.sub_t (T.add_t (T.Var ("s", T.Sint)) T.one) T.one)) );
      ( "s = -(-s)",
        "s = -2^31 (undefined)",
        (fun s -> not (B.equal (W.sint s) (W.min_value W.Signed W.W32))),
        fun () ->
          Solver.holds
            (T.eq_t (T.Var ("s", T.Sint)) (T.App (T.Neg, [ T.App (T.Neg, [ T.Var ("s", T.Sint) ]) ]))) );
      ( "u + 1 > u",
        "u = 2^32 - 1 (incorrect)",
        (fun u -> W.compare_u (W.add W.Unsigned u (W.of_int W.W32 1)) u > 0),
        fun () ->
          Solver.holds
            ~hyps:[ T.le_t T.zero (T.Var ("u", T.Sint)) ]
            (T.lt_t (T.Var ("u", T.Sint)) (T.add_t (T.Var ("u", T.Sint)) T.one)) );
      ( "u * 2 = 4 --> u = 2",
        "u = 2^31 + 2 (incorrect)",
        (fun u ->
          let prod = W.mul W.Unsigned u (W.of_int W.W32 2) in
          (not (W.equal prod (W.of_int W.W32 4))) || W.equal u (W.of_int W.W32 2)),
        fun () ->
          Solver.holds
            ~hyps:
              [ T.le_t T.zero (T.Var ("u", T.Sint));
                T.eq_t (T.mul_t (T.Var ("u", T.Sint)) (T.int_of 2)) (T.int_of 4) ]
            (T.eq_t (T.Var ("u", T.Sint)) (T.int_of 2)) );
      ( "-u = u --> u = 0",
        "u = 2^31 (incorrect)",
        (fun u ->
          (not (W.equal (W.neg W.Unsigned u) u)) || W.is_zero u),
        fun () ->
          Solver.holds
            ~hyps:
              [ T.le_t T.zero (T.Var ("u", T.Sint));
                T.eq_t (T.App (T.Neg, [ T.Var ("u", T.Sint) ])) (T.Var ("u", T.Sint)) ]
            (T.eq_t (T.Var ("u", T.Sint)) T.zero) );
    ]
  in
  let candidates =
    [ B.zero; B.one; B.of_int 2; B.pred (B.pow2 31); B.pow2 31; B.add (B.pow2 31) (B.of_int 2);
      B.pred (B.pow2 32) ]
  in
  let rows =
    List.map
      (fun (name, paper, word_check, ideal_check) ->
        let cex =
          List.find_opt (fun v -> not (word_check (u32 v))) candidates
        in
        [
          name;
          (match cex with Some v -> "falsified at " ^ B.to_string v | None -> "NO CEX FOUND");
          paper;
          (if ideal_check () then "proved" else "NOT PROVED");
        ])
      equations
  in
  print_string
    (Ac_stats.render_table
       ~header:[ "Equation"; "On 32-bit words"; "Paper's counter-example"; "On ideal ints (auto)" ]
       rows)

let table3 () =
  header "Table 3: word-abstraction rules on the midpoint example (Sec 3.3)";
  let res = Driver.run Csources.mid_c in
  let fr = Option.get (Driver.find_result res "mid") in
  Printf.printf "Input:  unsigned m = (l + r) / 2u;\nOutput:\n%s\n"
    (Mprint.func_to_string fr.Driver.fr_final);
  (match fr.Driver.fr_wa_thm with
  | Some thm ->
    Printf.printf "Word-abstraction derivation (rules as in Table 3; truncated):\n%s\n"
      (Thm.derivation_to_string ~max_depth:4 thm);
    Printf.printf "Derivation size: %d rule applications\n" (Thm.size thm)
  | None -> print_endline "word abstraction skipped!");
  print_endline
    "Paper: the generated abstraction is\n\
    \  do guard (λs. l + r <= UINT_MAX); return ((l + r) div 2) od"

let fig3 () =
  header "Fig 3: swap without heap abstraction";
  let options =
    { Driver.default_options with defaults = { Driver.default_func_options with Driver.word_abs = false; heap_abs = false } }
  in
  Printf.printf "C source:\n%s\nTranslation (byte-level heap, no abstraction):\n%s\n"
    Csources.swap_c
    (final_output ~options Csources.swap_c "swap")

let fig4 () =
  header "Fig 4: the heap lifting function";
  let lenv = Ac_lang.Layout.empty in
  let w8 = Ty.Cword (Ty.Unsigned, Ty.W8) in
  let w16 = Ty.Cword (Ty.Unsigned, Ty.W16) in
  let heap = Ac_simpl.Heap.empty in
  (* Tag 0xf300 as a w8 object and 0xf302 as a w16 object, as in Fig 4. *)
  let a8 = B.of_int 0xf300 and a16 = B.of_int 0xf302 in
  let heap = Ac_simpl.Heap.retype lenv heap w8 a8 in
  let heap = Ac_simpl.Heap.retype lenv heap w16 a16 in
  let heap = Ac_simpl.Heap.write_byte heap a8 0x44 in
  let heap = Ac_simpl.Heap.write_byte heap a16 0x47 in
  let heap = Ac_simpl.Heap.write_byte heap (B.succ a16) 0xe2 in
  let show c a =
    match Ac_simpl.Heap.heap_lift lenv heap c a with
    | Some v -> Value.to_string v
    | None -> "None"
  in
  print_string
    (Ac_stats.render_table
       ~header:[ "Address"; "Lift as"; "Result"; "Why" ]
       [
         [ "0xf300"; "word8 heap"; show w8 a8; "tagged w8, aligned" ];
         [ "0xf302"; "word16 heap"; show w16 a16; "tagged w16, aligned (0xe247)" ];
         [ "0xf303"; "word16 heap"; show w16 (B.succ a16); "misaligned -> None" ];
         [ "0xf300"; "word16 heap"; show w16 a8; "wrong type tag -> None" ];
         [ "0xf304"; "word8 heap"; show w8 (B.of_int 0xf304); "untyped -> None" ];
       ])

let table4 () =
  header "Table 4: heap-abstraction rules on swap";
  let options =
    { Driver.default_options with defaults = { Driver.default_func_options with Driver.word_abs = false; heap_abs = true } }
  in
  let res = Driver.run ~options Csources.swap_c in
  let fr = Option.get (Driver.find_result res "swap") in
  (match fr.Driver.fr_hl_thm with
  | Some thm ->
    Printf.printf "Heap-abstraction derivation (rules as in Table 4; truncated):\n%s\n"
      (Thm.derivation_to_string ~max_depth:3 thm);
    Printf.printf "Derivation size: %d rule applications; revalidated: %b\n" (Thm.size thm)
      (Thm.check res.Driver.ctx thm = Ok ())
  | None -> print_endline "heap abstraction skipped!")

let fig5 () =
  header "Fig 5: swap with heap abstraction";
  let options =
    { Driver.default_options with defaults = { Driver.default_func_options with Driver.word_abs = false; heap_abs = true } }
  in
  Printf.printf "%s\nPaper:\n%s\n"
    (final_output ~options Csources.swap_c "swap")
    "  do guard (λs. is_valid_w32 s a);\n\
    \     t ← gets (λs. s[a]);\n\
    \     guard (λs. is_valid_w32 s b);\n\
    \     modify (λs. s[a := s[b]]);\n\
    \     modify (λs. s[b := t])\n\
    \  od"

let footnote2 () =
  header "Sec 3.2 footnote 2: the midpoint VC, words vs ideals";
  let l = T.Var ("l", T.Sint) and r = T.Var ("r", T.Sint) in
  let uint_max = T.Int (B.pred (B.pow2 32)) in
  let bounds = [ T.le_t T.zero l; T.le_t l uint_max; T.le_t T.zero r; T.le_t r uint_max ] in
  let time f =
    let t0 = Sys.time () in
    let x = f () in
    (x, Sys.time () -. t0)
  in
  (* ℕ version *)
  let nat_goal =
    let m = T.App (T.Div, [ T.add_t l r; T.int_of 2 ]) in
    T.and_t (T.le_t l m) (T.lt_t m r)
  in
  let nat_res, nat_t =
    time (fun () -> fst (Solver.prove ~hyps:(T.lt_t l r :: bounds) nat_goal))
  in
  (* word version *)
  let word_goal =
    let m = T.App (T.Div, [ T.App (T.Mod, [ T.add_t l r; T.Int (B.pow2 32) ]); T.int_of 2 ]) in
    T.and_t (T.le_t l m) (T.lt_t m r)
  in
  let word_res, word_t =
    time (fun () -> fst (Solver.prove ~hyps:(T.lt_t l r :: bounds) word_goal))
  in
  let prec_res, prec_t =
    time (fun () ->
        fst (Solver.prove ~hyps:((T.lt_t l r :: T.le_t (T.add_t l r) uint_max :: bounds)) nat_goal))
  in
  let show = function
    | Solver.Proved -> "proved automatically"
    | Solver.Refuted m ->
      Printf.sprintf "refuted (%s)"
        (String.concat ", "
           (List.filter_map
              (fun (x, v) ->
                match v with
                | T.Vint n when x = "l" || x = "r" -> Some (Printf.sprintf "%s=%s" x (B.to_string n))
                | _ -> None)
              m))
    | Solver.Unknown _ -> "not discharged"
  in
  print_string
    (Ac_stats.render_table
       ~header:[ "Goal"; "Outcome"; "Time (s)" ]
       [
         [ "l <= (l+r) div 2 < r on ℕ (after WA)"; show nat_res; Printf.sprintf "%.4f" nat_t ];
         [ "same on 32-bit words, no precondition"; show word_res; Printf.sprintf "%.4f" word_t ];
         [ "words + unat l + unat r <= UINT_MAX"; show prec_res; Printf.sprintf "%.4f" prec_t ];
       ]);
  print_endline
    "Paper: 3 experienced engineers needed a median of 10 minutes for the word\n\
     version; the nat version is 'effectively zero' human effort."

let suzuki () =
  header "Sec 4.5: Suzuki's challenge";
  let options =
    { Driver.default_options with defaults = { Driver.default_func_options with Driver.word_abs = false; heap_abs = true } }
  in
  let res = Driver.run ~options Csources.suzuki_c in
  Printf.printf "Abstraction:\n%s\n" (final_output ~options Csources.suzuki_c "suzuki");
  let cfg = Vc.make_config res.Driver.final_prog in
  let nodec = Ty.Cstruct "node" in
  let triple =
    {
      Vc.t_pre =
        (fun args st ->
          let ts = List.map Vc.tv_to_term args in
          let validity =
            List.map (fun p -> T.select_t (Vc.state_get st (Vc.valid_name nodec)) p) ts
          in
          let rec distinct = function
            | [] -> []
            | p :: rest -> List.map (fun q -> T.not_t (T.eq_t p q)) rest @ distinct rest
          in
          T.conj (validity @ distinct ts));
      t_post = (fun _ rv _ _ -> T.eq_t (Vc.tv_to_term rv) (T.int_of 4));
    }
  in
  let t0 = Sys.time () in
  let vcs = Vc.func_vcs cfg "suzuki" triple in
  let ok = List.for_all (fun (_, vc) -> Solver.is_proved (fst (Solver.prove vc))) vcs in
  Printf.printf "returns 4 given distinct valid pointers: %s (%.3fs)\n"
    (if ok then "proved automatically" else "NOT PROVED")
    (Sys.time () -. t0);
  print_endline "Paper: \"Isabelle/HOL's auto immediately discharges the generated VCs\""

let fig6 () =
  header "Fig 6: in-place list reversal";
  Printf.printf "C source:\n%s\nAutoCorres output:\n%s\n" Csources.reverse_c
    (final_output Csources.reverse_c "reverse");
  let r = Reverse_proof.run ~check_lemmas:true () in
  (match r.Reverse_proof.lemma_check with
  | Ok () -> print_endline "List lemma library: validated"
  | Error e -> print_endline ("List lemma library: FAILED " ^ e));
  List.iter
    (fun (label, o) ->
      Printf.printf "  %-55s %s\n" label
        (if Solver.is_proved o then "PROVED" else "NOT PROVED"))
    r.Reverse_proof.vcs;
  print_endline
    "Paper (Sec 5.2): M/N's invariant and main proof carry over; total\n\
     correctness via the decreasing length of the unreversed suffix."

let fig8 () =
  header "Fig 7/8: the Schorr-Waite algorithm";
  Printf.printf "C source (Fig 8):\n%s\nAutoCorres output:\n%s\n" Csources.schorr_waite_c
    (final_output Csources.schorr_waite_c "schorr_waite");
  let t0 = Sys.time () in
  let r = Schorr_waite_proof.run () in
  Printf.printf
    "M/N correctness statement (Fig 7) checked on %d graphs (all graphs up to 3\n\
     nodes, random larger ones): %d failures (%.1fs)\n"
    r.Schorr_waite_proof.graphs_checked
    (List.length r.Schorr_waite_proof.failures)
    (Sys.time () -. t0)

let table5 () =
  header "Table 5: pipeline statistics on larger code bases";
  let rows =
    List.map
      (fun p ->
        let src = Ac_codegen.generate p in
        let row, _ = Ac_stats.measure ~name:p.Ac_codegen.p_name src in
        row)
      Ac_codegen.profiles
  in
  let sw_row, _ = Ac_stats.measure ~name:"schorr-waite" Csources.schorr_waite_c in
  let rows = rows @ [ sw_row ] in
  print_string
    (Ac_stats.render_table ~header:Ac_stats.table5_header
       (List.map Ac_stats.row_to_strings rows));
  print_endline
    "Paper (real seL4/CapDL/Piccolo/eChronos sources; 3.3GHz Xeon):\n\
    \  spec lines 25-53% smaller, term sizes 40-61% smaller, AutoCorres\n\
    \  slower than the parser but a one-off cost.  The synthetic code bases\n\
    \  reproduce the shape: same winner, same order of reduction.";
  (* the qualitative claims, checked *)
  let ok_spec = List.for_all (fun r -> r.Ac_stats.ac_spec_lines < r.Ac_stats.parser_spec_lines) rows in
  let ok_term = List.for_all (fun r -> r.Ac_stats.ac_term_size <= r.Ac_stats.parser_term_size) rows in
  Printf.printf "spec always smaller: %b; term size never larger: %b\n" ok_spec ok_term

let count_loc path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         let t = String.trim line in
         if t <> "" && not (String.length t >= 2 && String.sub t 0 2 = "(*") then incr n
       done
     with End_of_file -> ());
    close_in ic;
    Some !n

let table6 () =
  header "Table 6: proof sizes for the list-reversal/Schorr-Waite development";
  let lemmas = count_loc "lib/cases/listlib.ml" in
  let reverse = count_loc "lib/cases/reverse_proof.ml" in
  let sw = count_loc "lib/cases/schorr_waite_proof.ml" in
  let show = function Some n -> string_of_int n | None -> "n/a" in
  print_string
    (Ac_stats.render_table
       ~header:[ "Component"; "This work (OCaml)"; "M/N (Isabelle)"; "H/M (Coq)" ]
       [
         [ "List definitions (lemma library)"; show lemmas; "62"; "~900" ];
         [ "Reversal proof script (partial+fault+term.)"; show reverse; "—"; "—" ];
         [ "Schorr-Waite harness (bounded validation)"; show sw; "—"; "—" ];
         [ "Paper totals (their line counts)"; "807 (This Work)"; "577"; "3317" ];
       ]);
  print_endline
    "Note: line counts across proof systems are not directly comparable (the\n\
     paper says the same of Isabelle vs Coq).  The qualitative claim\n\
     reproduced here: the high-level proof structure (invariant, ghost\n\
     sequences, lemma library, measure) ports to the AutoCorres output of\n\
     the C code with only the three adjustments of Sec 5.2, and the VCs\n\
     fall to generic automation."

let memset () =
  header "Sec 4.6: mixing byte-level and lifted code (memset)";
  let options =
    {
      Driver.default_options with
      overrides = [ ("my_memset", { Driver.default_func_options with Driver.word_abs = false; heap_abs = false }) ];
    }
  in
  Printf.printf "my_memset stays byte-level; its lifted caller:\n%s\n"
    (final_output ~options Csources.memset_mixed_c "zero_cell");
  print_endline
    "Paper: {valid p} exec_concrete (memset' p 0 4) {valid p ∧ s[p] = 0}"

let custom_rule () =
  header "Sec 3.3: extending the word-abstraction rule set";
  let d = Custom_rule.run () in
  Printf.printf "C source:\n%s\n" Custom_rule.overflow_test_c;
  Printf.printf "Built-in rules only (the overflow test is re-concretised):\n%s\n"
    d.Custom_rule.without_rule;
  Printf.printf "With the registered custom rule (the paper's example):\n%s\n"
    d.Custom_rule.with_rule;
  print_endline "Paper: the test abstracts to  UINT_MAX < x + y"

let ablation () =
  header "Ablation: where does the abstraction's size reduction come from?";
  let corpus =
    [ ("swap", Csources.swap_c); ("gcd", Csources.gcd_c); ("reverse", Csources.reverse_c);
      ("schorr_waite", Csources.schorr_waite_c); ("suzuki", Csources.suzuki_c) ]
  in
  let configs =
    [
      ("full pipeline", Driver.default_options);
      ( "no clean-up rewrites",
        { Driver.default_options with polish = false } );
      ( "no word abstraction",
        { Driver.default_options with
          defaults = { Driver.default_func_options with Driver.word_abs = false; heap_abs = true } } );
      ( "no heap abstraction",
        { Driver.default_options with
          defaults = { Driver.default_func_options with Driver.word_abs = true; heap_abs = false } } );
      ( "neither (L2 only)",
        { Driver.default_options with
          defaults = { Driver.default_func_options with Driver.word_abs = false; heap_abs = false } } );
    ]
  in
  let rows =
    List.map
      (fun (cname, options) ->
        let lines, terms =
          List.fold_left
            (fun (l, t) (_, src) ->
              let res = Driver.run ~options src in
              List.fold_left
                (fun (l, t) fr ->
                  (l + Mprint.lines_of_spec fr.Driver.fr_final,
                   t + M.func_size fr.Driver.fr_final))
                (l, t) res.Driver.funcs)
            (0, 0) corpus
        in
        (cname, lines, terms))
      configs
  in
  let _, base_l, base_t = List.hd rows in
  print_string
    (Ac_stats.render_table
       ~header:[ "Configuration"; "Spec lines"; "Term size"; "vs full" ]
       (List.map
          (fun (c, l, t) ->
            [ c; string_of_int l; string_of_int t;
              Printf.sprintf "%+.0f%% lines" (100. *. (float_of_int l /. float_of_int base_l -. 1.)) ])
          rows));
  ignore base_t;
  print_endline
    "Reading: the clean-up rewrites (guard discharge, inlining, return-flow
     straightening) and the two semantic abstractions each contribute to the
     reduction the paper reports; disabling any knob grows the output."

let analysis () =
  header "Guard discharge: abstract interpretation over the corpus";
  let no_discharge =
    { Driver.default_options with
      defaults = { Driver.default_func_options with Driver.discharge_guards = false } }
  in
  let final_guards options src =
    let res = Driver.run ~options src in
    List.fold_left
      (fun acc fr -> acc + Ac_analysis.guard_count fr.Driver.fr_final.M.body)
      0 res.Driver.funcs
  in
  let rows =
    List.map
      (fun (name, src) ->
        let simpl = Ac_simpl.C2simpl.parse src in
        let parser_guards =
          List.fold_left (fun acc f -> acc + Ac_stats.ir_guard_count f.Ir.body) 0
            simpl.Ir.funcs
        in
        let off = final_guards no_discharge src in
        let on = final_guards Driver.default_options src in
        (name, parser_guards, off, on))
      Csources.all
  in
  let tp, toff, ton =
    List.fold_left (fun (p, o, n) (_, a, b, c) -> (p + a, o + b, n + c)) (0, 0, 0) rows
  in
  print_string
    (Ac_stats.render_table
       ~header:[ "Program"; "Guards(parser)"; "rewrites only"; "+ analysis"; "analysis wins" ]
       (List.map
          (fun (name, p, off, on) ->
            [ name; string_of_int p; string_of_int off; string_of_int on;
              string_of_int (off - on) ])
          rows
       @ [ [ "TOTAL"; string_of_int tp; string_of_int toff; string_of_int ton;
             string_of_int (toff - ton) ] ]));
  Printf.printf
    "%.0f%% of the parser's UB guards are statically discharged (every removal\n\
     certified through the kernel as Rule_guard_true and re-validated by\n\
     Thm.check); the abstract interpretation accounts for the flow-sensitive\n\
     ones the syntactic rewrites cannot see.\n"
    (100. *. (1. -. (float_of_int ton /. float_of_int tp)))

let robustness () =
  header "Robustness: fault injection and graceful degradation";
  (* A deterministic per-run pseudo-random fault schedule: fail each kernel
     rule application with probability rate/1000. *)
  let lcg_hook seed rate =
    let state = ref seed in
    fun (_ : string) ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state mod 1000 < rate
  in
  let keep_going = { Driver.default_options with Driver.keep_going = true } in
  let ladder res =
    let count pred = List.length (List.filter pred res.Driver.funcs) in
    let dcount lv =
      List.length
        (List.filter (fun d -> Driver.degraded_level d = lv) res.Driver.degraded)
    in
    Printf.sprintf "%d/%d/%d/%d/%d"
      (dcount Driver.Lsimpl) (dcount Driver.Ll1)
      (count (fun fr -> Driver.level_of fr = Driver.Ll2))
      (count (fun fr -> Driver.level_of fr = Driver.Lhl))
      (count (fun fr -> Driver.level_of fr = Driver.Lwa))
  in
  let rows =
    List.concat_map
      (fun (name, src) ->
        List.map
          (fun rate ->
            Thm.set_fault_hook (if rate = 0 then None else Some (lcg_hook (Hashtbl.hash (name, rate)) rate));
            (* Per-function failures are recorded in the result instead of
               aborting the experiment. *)
            let res = Driver.run ~options:keep_going src in
            Thm.set_fault_hook None;
            let recheck = Driver.check_all res = Ok () in
            [ name; Printf.sprintf "%.1f%%" (float_of_int rate /. 10.); ladder res;
              string_of_int (List.length res.Driver.diags);
              (if recheck then "ok" else "FAILED") ])
          [ 0; 30; 150 ])
      [ ("gcd", Csources.gcd_c); ("reverse", Csources.reverse_c);
        ("schorr_waite", Csources.schorr_waite_c); ("memset_mixed", Csources.memset_mixed_c) ]
  in
  print_string
    (Ac_stats.render_table
       ~header:[ "Program"; "Fault rate"; "S/1/2/H/W"; "Diags"; "Recheck" ]
       rows);
  print_endline
    "Reading: as the injected fault rate grows, functions slide down the\n\
     degradation ladder (right to left) instead of aborting the unit, and\n\
     every theorem that was still emitted re-validates through Thm.check."

(* PR 3's performance layer, measured honestly on this machine:

   - end-to-end translation of every corpus program plus the 40-function
     echronos-like unit (the workload per-function parallelism exists
     for), under three configurations: the pre-PR sequential baseline
     (hash-consing off, L2 fixpoint memo off, jobs=1), the new stack
     sequentially (jobs=1), and the new stack at --jobs 4;
   - derivation re-checking, uncached ([Thm.check], re-walks every
     occurrence) vs cached ([Check_cache], memoized on the derivation
     DAG);
   - a divergence check: all translation configurations must produce
     byte-identical output (functions, levels, bodies, diagnostics), and
     both check modes the same verdict.

   Results go to BENCH_pr3.json in the working directory.  Wall-clock
   speedup from --jobs naturally depends on the cores available; the
   JSON records the machine's core count next to the numbers. *)

(* Best-of-N wall clock, with the competing configurations interleaved
   round-robin: background load then hits every configuration in each
   round instead of skewing whichever one happened to run while the
   machine was busy, so the recorded ratios are stable under noise. *)
let time_min_all ~reps (fs : (unit -> 'a) list) : ('a * float) list =
  let n = List.length fs in
  let best = Array.make n infinity in
  let last = Array.make n None in
  for _ = 1 to reps do
    List.iteri
      (fun i f ->
        (* Start every measurement from the same heap state: without this,
           a configuration can be charged for the major-GC debt run up by
           whichever thunk happened to precede it. *)
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        let v = f () in
        let dt = Unix.gettimeofday () -. t0 in
        last.(i) <- Some v;
        if dt < best.(i) then best.(i) <- dt)
      fs
  done;
  List.init n (fun i -> (Option.get last.(i), best.(i)))

(* Everything observable about a run: per-function level, chain
   presence, printed final body, skip list, diagnostics, budget hits. *)
let fingerprint (res : Driver.result) : string =
  let b = Buffer.create 4096 in
  List.iter
    (fun fr ->
      Buffer.add_string b fr.Driver.fr_name;
      Buffer.add_string b (Driver.level_name (Driver.level_of fr));
      Buffer.add_string b (if fr.Driver.fr_chain = None then "-" else "+");
      Buffer.add_string b (Mprint.func_to_string fr.Driver.fr_final);
      List.iter
        (fun (p, w) -> Buffer.add_string b (p ^ ":" ^ w))
        fr.Driver.fr_skipped)
    res.Driver.funcs;
  List.iter
    (fun (d : Driver.degraded) ->
      Buffer.add_string b d.Driver.dg_name;
      Buffer.add_string b (Driver.level_name (Driver.degraded_level d)))
    res.Driver.degraded;
  List.iter
    (fun d -> Buffer.add_string b (Autocorres.Diag.to_string d))
    res.Driver.diags;
  Buffer.add_string b (string_of_int res.Driver.budget_hits);
  Buffer.contents b

let perf () =
  header "Perf: hash-consing, check cache, parallel translation (PR 3)";
  let workloads =
    Csources.all @ [ ("echronos-like", Ac_codegen.generate Ac_codegen.echronos_like) ]
  in
  let opts ?(l2_memo = true) jobs =
    { Driver.default_options with Driver.keep_going = true; jobs; l2_memo }
  in
  let translate_all ?l2_memo jobs () =
    List.map (fun (_, src) -> Driver.run ~options:(opts ?l2_memo jobs) src) workloads
  in
  let reps = 5 in
  (* The pre-PR baseline: structural equality everywhere, every fixpoint
     round re-converting every function, one domain. *)
  let baseline_thunk () =
    T.hc_enabled := false;
    Fun.protect
      ~finally:(fun () -> T.hc_enabled := true)
      (translate_all ~l2_memo:false 1)
  in
  let ( (baseline_results, baseline_s), (seq_results, seq_s), (par_results, par_s) ) =
    match
      time_min_all ~reps [ baseline_thunk; translate_all 1; translate_all 4 ]
    with
    | [ b; s; p ] -> (b, s, p)
    | _ -> assert false
  in
  let fps l = List.map fingerprint l in
  let divergence =
    fps baseline_results <> fps seq_results || fps seq_results <> fps par_results
  in
  (* Derivation checking over every theorem those runs produced. *)
  let check_mode cached () =
    List.for_all (fun res -> Driver.check_all ~cached res = Ok ()) par_results
  in
  let (check_ok_uncached, uncached_s), (check_ok_cached, cached_s) =
    match time_min_all ~reps:9 [ check_mode false; check_mode true ] with
    | [ u; c ] -> (u, c)
    | _ -> assert false
  in
  let speedup a b = if b > 0. then a /. b else 1. in
  let cores = Domain.recommended_domain_count () in
  let rows =
    [
      [ "translate, baseline (no hc/memo, jobs=1)"; Printf.sprintf "%.3f" baseline_s;
        "1.00x" ];
      [ "translate, optimised, jobs=1"; Printf.sprintf "%.3f" seq_s;
        Printf.sprintf "%.2fx" (speedup baseline_s seq_s) ];
      [ "translate, optimised, jobs=4"; Printf.sprintf "%.3f" par_s;
        Printf.sprintf "%.2fx" (speedup baseline_s par_s) ];
      [ "check, uncached (kernel walk)"; Printf.sprintf "%.3f" uncached_s; "1.00x" ];
      [ "check, cached (derivation DAG)"; Printf.sprintf "%.3f" cached_s;
        Printf.sprintf "%.2fx" (speedup uncached_s cached_s) ];
    ]
  in
  print_string
    (Ac_stats.render_table ~header:[ "Configuration"; "Best wall (s)"; "Speedup" ] rows);
  Printf.printf
    "\n%d workload(s), %d core(s) available; output divergence between modes: %s;\n\
     both check modes accept: %s.\n"
    (List.length workloads) cores (if divergence then "DIVERGED" else "none")
    (if check_ok_uncached && check_ok_cached then "yes" else "NO");
  let json =
    Printf.sprintf
      "{\"experiment\":\"perf\",\"workloads\":%d,\"cores\":%d,\n\
       \ \"translate_baseline_s\":%.6f,\"translate_seq_s\":%.6f,\"translate_jobs4_s\":%.6f,\n\
       \ \"translate_speedup_vs_baseline\":%.3f,\"translate_jobs_speedup\":%.3f,\n\
       \ \"check_uncached_s\":%.6f,\"check_cached_s\":%.6f,\"check_speedup\":%.3f,\n\
       \ \"check_cached_faster_pct\":%.1f,\"divergence\":%b,\"checks_accept\":%b}\n"
      (List.length workloads) cores baseline_s seq_s par_s
      (speedup baseline_s par_s) (speedup seq_s par_s)
      uncached_s cached_s (speedup uncached_s cached_s)
      (100. *. (1. -. (cached_s /. uncached_s)))
      divergence (check_ok_uncached && check_ok_cached)
  in
  let oc = open_out "BENCH_pr3.json" in
  output_string oc json;
  close_out oc;
  print_endline "wrote BENCH_pr3.json";
  if divergence || not (check_ok_uncached && check_ok_cached) then
    failwith "perf: divergence between modes"

(* ------------------------------------------------------------------ *)
(* PR 4: the content-addressed proof store.  Three measurements:

   - cold translation (empty store, so the run also records and saves
     one derivation trace per function) vs warm translation (every
     function replays its stored trace through the kernel instead of
     re-translating) vs the no-store baseline, over the corpus plus
     generated multi-function units — warm must be >= 2x faster than
     cold, and all three byte-identical;
   - the batch server: `acc serve` round-trip throughput in requests/sec
     against a warm store;
   - a divergence check like perf's: identical fingerprints across the
     three translate configurations, and every replayed derivation must
     re-validate under [Driver.check_all].

   Results go to BENCH_pr4.json in the working directory. *)

let store () =
  header "Store: incremental translation via the proof store (PR 4)";
  (* Fixed GC geometry for the whole experiment (restored on exit): a
     minor heap large enough that a replay run's working set stays in it,
     and a major-heap slack factor high enough that the measurement is
     not dominated by when the collector happens to start a cycle.  Under
     the default geometry the allocation-heavy cold runs drift 20-45%
     between otherwise identical processes, which is noise on exactly the
     quantity this experiment asserts a floor for. *)
  let gc0 = Gc.get () in
  Fun.protect ~finally:(fun () -> Gc.set gc0) @@ fun () ->
  Gc.set { gc0 with Gc.minor_heap_size = 1 lsl 22; Gc.space_overhead = 200 };
  (* Correctness sweep over everything: the whole test corpus plus four
     generated multi-function units.  Timing runs on the three mid-size
     generated units — multi-function translation units are the workload
     incremental translation exists for; on a 10-line toy file both sides
     of the ratio are dominated by per-run fixed costs, and on a
     sub-100ms workload the cold/warm ratio is dominated by timer noise.
     (ci.sh separately times the on-disk corpus/*.c files through the
     CLI, with its own floor.) *)
  let sweep_units =
    [
      ("echronos-like", Ac_codegen.generate Ac_codegen.echronos_like);
      ("piccolo-like", Ac_codegen.generate Ac_codegen.piccolo_like);
      ("capdl-like", Ac_codegen.generate Ac_codegen.capdl_like);
      ("sel4-like", Ac_codegen.generate Ac_codegen.sel4_like);
    ]
  in
  let units =
    List.filter (fun (n, _) -> n <> "sel4-like") sweep_units
  in
  let workloads = Csources.all @ sweep_units in
  let options = { Driver.default_options with Driver.keep_going = true } in
  let mkdtemp () =
    let d = Filename.temp_file "acc_bench_store" ".d" in
    Sys.remove d;
    d
  in
  let open_store dir =
    match Store.open_ ~dir () with Ok st -> st | Error m -> failwith m
  in
  let run_all ?store srcs = List.map (fun (_, src) -> Driver.run ~options ?store src) srcs in
  (* --- correctness: cold, warm and no-store must be byte-identical, and
     every replayed derivation must re-validate. --- *)
  let dir_sweep = mkdtemp () in
  let sweep_cold = run_all ~store:(open_store dir_sweep) workloads in
  let sweep_warm = run_all ~store:(open_store dir_sweep) workloads in
  let sweep_nostore = run_all workloads in
  let fps l = List.map fingerprint l in
  let divergence =
    fps sweep_cold <> fps sweep_warm || fps sweep_warm <> fps sweep_nostore
  in
  let sum f l = List.fold_left (fun a r -> a + f r) 0 l in
  let warm_hits = sum (fun r -> r.Driver.store_hits) sweep_warm in
  let warm_misses = sum (fun r -> r.Driver.store_misses) sweep_warm in
  let cold_misses = sum (fun r -> r.Driver.store_misses) sweep_cold in
  let replays_check =
    List.for_all (fun res -> Driver.check_all res = Ok ()) sweep_warm
  in
  (* --- timing: cold (empty store, so the run also records and saves one
     derivation trace per function) vs warm (every function replays its
     stored trace through the kernel) vs no store, over the units.

     Methodology, tuned for a stable ratio rather than a lucky one: the
     configurations are timed in PAIRED rounds — each round times one
     cold rep immediately followed by one warm rep — and the reported
     speedup is the MEDIAN of the per-round ratios.  On a shared machine
     the wall clock runs in multi-second fast and slow epochs; an epoch
     covers both members of a round, so it cancels in that round's ratio,
     where separate per-configuration blocks hand whichever one collides
     with a slow epoch a 25% penalty.  Medians rather than best-of for
     the same reason: the ratio of two minima is at the mercy of one
     GC-quiet repetition on either side.  The timing runs after the
     correctness sweep above, so the rounds see the steady process state
     a long-lived driver (`acc serve`, a build daemon) actually runs
     in. *)
  let time1 f =
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let median l =
    let sorted = List.sort compare l in
    List.nth sorted (List.length l / 2)
  in
  let dir_cold = mkdtemp () and dir_warm = mkdtemp () in
  let cold_thunk () =
    (match Store.clear ~dir:dir_cold with Ok _ -> () | Error _ -> ());
    run_all ~store:(open_store dir_cold) units
  in
  let warm_thunk () = run_all ~store:(open_store dir_warm) units in
  let nostore_thunk () = run_all units in
  ignore (run_all ~store:(open_store dir_warm) units);
  let rounds =
    List.init 9 (fun _ ->
        let c = time1 cold_thunk in
        let w = time1 warm_thunk in
        let n = time1 nostore_thunk in
        (c, w, n))
  in
  let cold_s = median (List.map (fun (c, _, _) -> c) rounds) in
  let warm_s = median (List.map (fun (_, w, _) -> w) rounds) in
  let nostore_s = median (List.map (fun (_, _, n) -> n) rounds) in
  let speedup = median (List.map (fun (c, w, _) -> c /. w) rounds) in
  (* Batch-server round-trip throughput, against the warm store: one
     process, N translate requests over a rotating set of files, one JSON
     response line each. *)
  let acc_exe =
    let candidates =
      [ "_build/default/bin/acc.exe"; "../bin/acc.exe"; "bin/acc.exe" ]
    in
    let find () = List.find_opt Sys.file_exists candidates in
    match find () with
    | Some p -> p
    | None -> (
        ignore (Sys.command "dune build bin/acc.exe > /dev/null 2>&1");
        match find () with
        | Some p -> p
        | None -> failwith "store bench: cannot locate acc.exe")
  in
  let req_files =
    List.filteri (fun i _ -> i < 3) Csources.all
    |> List.map (fun (name, src) ->
           let f = Filename.temp_file ("acc_serve_" ^ name) ".c" in
           let oc = open_out f in
           output_string oc src;
           close_out oc;
           f)
  in
  let dir_serve = mkdtemp () in
  let cmd =
    Printf.sprintf "%s serve --store %s 2> /dev/null" (Filename.quote acc_exe)
      (Filename.quote dir_serve)
  in
  let ic, oc = Unix.open_process cmd in
  let request f =
    output_string oc ("translate " ^ f ^ "\n");
    flush oc;
    input_line ic
  in
  (* Warm the server's store (and hash-cons tables) first. *)
  List.iter (fun f -> ignore (request f)) req_files;
  let n_requests = 60 in
  let ok_responses = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to n_requests do
    let f = List.nth req_files (i mod List.length req_files) in
    let line = request f in
    if String.length line >= 11 && String.sub line 0 11 = "{\"ok\":true," then
      incr ok_responses
  done;
  let serve_s = Unix.gettimeofday () -. t0 in
  ignore (Unix.close_process (ic, oc));
  List.iter Sys.remove req_files;
  let req_per_s = if serve_s > 0. then float_of_int n_requests /. serve_s else 0. in
  let rows =
    [
      [ "translate, no store"; Printf.sprintf "%.3f" nostore_s; "" ];
      [ "translate, cold store (record + save)"; Printf.sprintf "%.3f" cold_s; "1.00x" ];
      [ "translate, warm store (kernel replay)"; Printf.sprintf "%.3f" warm_s;
        Printf.sprintf "%.2fx" speedup ];
    ]
  in
  print_string
    (Ac_stats.render_table ~header:[ "Configuration"; "Best wall (s)"; "Speedup" ] rows);
  Printf.printf
    "\n%d workload(s) swept, %d unit(s) timed; warm sweep: %d replayed, %d\n\
     re-translated (cold recorded %d); divergence between modes: %s;\n\
     replayed derivations re-validate: %s;\n\
     serve: %d/%d requests ok, %.1f req/s round-trip.\n"
    (List.length workloads) (List.length units) warm_hits warm_misses cold_misses
    (if divergence then "DIVERGED" else "none")
    (if replays_check then "yes" else "NO")
    !ok_responses n_requests req_per_s;
  let json =
    Printf.sprintf
      "{\"experiment\":\"store\",\"workloads\":%d,\n\
       \ \"translate_nostore_s\":%.6f,\"translate_cold_s\":%.6f,\"translate_warm_s\":%.6f,\n\
       \ \"warm_speedup_vs_cold\":%.3f,\"warm_hits\":%d,\"warm_misses\":%d,\n\
       \ \"divergence\":%b,\"replays_check\":%b,\n\
       \ \"serve_requests\":%d,\"serve_ok\":%d,\"serve_s\":%.6f,\"serve_req_per_s\":%.1f}\n"
      (List.length workloads) nostore_s cold_s warm_s speedup warm_hits warm_misses
      divergence replays_check n_requests !ok_responses serve_s req_per_s
  in
  let out = open_out "BENCH_pr4.json" in
  output_string out json;
  close_out out;
  print_endline "wrote BENCH_pr4.json";
  if divergence then failwith "store: warm output diverged from cold";
  if not replays_check then failwith "store: a replayed derivation failed re-validation";
  if speedup < 2. then
    failwith
      (Printf.sprintf "store: warm run only %.2fx faster than cold (floor: 2x)" speedup);
  if !ok_responses <> n_requests then failwith "store: serve dropped requests"

(* ------------------------------------------------------------------ *)
(* PR 6: the interprocedural summary engine.  Per workload: guards the C
   parser emitted, guards discharged at L2 without the summary table
   (intra) and with it (inter), and the wall time of both analysis
   configurations.  Floors asserted: the aggregate interprocedural
   discharge rate stays strictly above the 57% intraprocedural baseline
   recorded in PR 1, interprocedural discharge is never below
   intraprocedural on any workload (monotone improvement), and every
   result re-validates under [Driver.check_all] (each discharge is a
   kernel-checked [Rule_guard_true]).

   Results go to BENCH_pr6.json in the working directory. *)

let interproc () =
  header "Interproc: summary-based guard discharge (PR 6)";
  (* Fixed GC geometry (restored on exit), as in the store experiment:
     the analyze-time columns drift tens of percent between identical
     processes under the default geometry. *)
  let gc0 = Gc.get () in
  Fun.protect ~finally:(fun () -> Gc.set gc0) @@ fun () ->
  Gc.set { gc0 with Gc.minor_heap_size = 1 lsl 22; Gc.space_overhead = 200 };
  let baseline_pct = 57. in
  let workloads =
    Csources.all @ [ ("echronos-like", Ac_codegen.generate Ac_codegen.echronos_like) ]
  in
  let opts on = { Driver.default_options with Driver.keep_going = true; interproc = on } in
  let median l =
    let sorted = List.sort compare l in
    List.nth sorted (List.length l / 2)
  in
  let time_run on src =
    let times =
      List.init 5 (fun _ ->
          Gc.full_major ();
          let t0 = Unix.gettimeofday () in
          ignore (Driver.run ~options:(opts on) src);
          Unix.gettimeofday () -. t0)
    in
    median times
  in
  let counts (res : Driver.result) =
    List.fold_left
      (fun (g, d) fr ->
        let src = Ac_stats.ir_guard_count fr.Driver.fr_simpl.Ac_simpl.Ir.body in
        let kept = Ac_analysis.guard_count fr.Driver.fr_l2.Ac_monad.M.body in
        (g + src, d + max 0 (src - kept)))
      (0, 0) res.Driver.funcs
  in
  let measured =
    List.map
      (fun (name, src) ->
        let res_inter = Driver.run ~options:(opts true) src in
        let res_intra = Driver.run ~options:(opts false) src in
        let guards, inter = counts res_inter in
        let _, intra = counts res_intra in
        let checked =
          Driver.check_all res_inter = Ok () && Driver.check_all res_intra = Ok ()
        in
        (name, guards, intra, inter, time_run false src, time_run true src, checked))
      workloads
  in
  let pct n d = if d = 0 then 0. else 100. *. float_of_int n /. float_of_int d in
  let rows =
    List.map
      (fun (name, g, intra, inter, t_intra, t_inter, _) ->
        [
          name; string_of_int g;
          Printf.sprintf "%d (%.0f%%)" intra (pct intra g);
          Printf.sprintf "%d (%.0f%%)" inter (pct inter g);
          Printf.sprintf "%.4f" t_intra; Printf.sprintf "%.4f" t_inter;
        ])
      measured
  in
  print_string
    (Ac_stats.render_table
       ~header:[ "Workload"; "Guards"; "Intra"; "Inter"; "Intra(s)"; "Inter(s)" ]
       rows);
  let sum f = List.fold_left (fun a m -> a + f m) 0 measured in
  let guards = sum (fun (_, g, _, _, _, _, _) -> g) in
  let intra = sum (fun (_, _, i, _, _, _, _) -> i) in
  let inter = sum (fun (_, _, _, i, _, _, _) -> i) in
  let rate_intra = pct intra guards and rate_inter = pct inter guards in
  let monotone =
    List.for_all (fun (_, _, ia, ir, _, _, _) -> ir >= ia) measured
  in
  let checked = List.for_all (fun (_, _, _, _, _, _, c) -> c) measured in
  Printf.printf
    "\naggregate: %d guards, intra %d (%.1f%%), inter %d (%.1f%%);\n\
     monotone on every workload: %s; kernel re-validation: %s.\n"
    guards intra rate_intra inter rate_inter
    (if monotone then "yes" else "NO")
    (if checked then "ok" else "FAILED");
  let wl_json =
    String.concat ",\n  "
      (List.map
         (fun (name, g, ia, ir, ti, tp, _) ->
           Printf.sprintf
             "{\"name\":\"%s\",\"guards\":%d,\"intra\":%d,\"inter\":%d,\"intra_s\":%.6f,\"inter_s\":%.6f}"
             name g ia ir ti tp)
         measured)
  in
  let json =
    Printf.sprintf
      "{\"experiment\":\"interproc\",\"workloads\":%d,\"guards\":%d,\n\
       \ \"intra_discharged\":%d,\"inter_discharged\":%d,\n\
       \ \"intra_rate_pct\":%.2f,\"inter_rate_pct\":%.2f,\"baseline_pct\":%.1f,\n\
       \ \"monotone\":%b,\"kernel_checked\":%b,\n\
       \ \"per_workload\":[%s]}\n"
      (List.length workloads) guards intra inter rate_intra rate_inter baseline_pct
      monotone checked wl_json
  in
  let out = open_out "BENCH_pr6.json" in
  output_string out json;
  close_out out;
  print_endline "wrote BENCH_pr6.json";
  if rate_inter <= baseline_pct then
    failwith
      (Printf.sprintf "interproc: rate %.1f%% not above the %.0f%% baseline" rate_inter
         baseline_pct);
  if not monotone then
    failwith "interproc: a workload discharged fewer guards than intraprocedural";
  if not checked then failwith "interproc: kernel re-validation failed"

(* ------------------------------------------------------------------ *)
(* PR 7: fault tolerance.  Drives `acc serve` over a pipe at injected
   fault rates 0%, 1% and 5% (io_error + worker_crash via --inject) and
   records, per rate: cold-store and warm-store request latency, warm
   p95, warm round-trip throughput, and the session's final
   retry/quarantine/restart counters from the `status` verb.  Floors
   asserted: every request at every rate answers ok:true (faults degrade,
   they never kill the session or a request), and the responses are
   byte-identical across rates once the store/pool counters and
   diagnostics are stripped.

   Results go to BENCH_pr7.json in the working directory. *)

let faults () =
  header "Faults: supervised serve under injected faults (PR 7)";
  (* Pinned GC geometry (restored on exit), as in the store experiment:
     the latency columns drift under the default geometry. *)
  let gc0 = Gc.get () in
  Fun.protect ~finally:(fun () -> Gc.set gc0) @@ fun () ->
  Gc.set { gc0 with Gc.minor_heap_size = 1 lsl 22; Gc.space_overhead = 200 };
  let acc_exe =
    let candidates =
      [ "_build/default/bin/acc.exe"; "../bin/acc.exe"; "bin/acc.exe" ]
    in
    let find () = List.find_opt Sys.file_exists candidates in
    match find () with
    | Some p -> p
    | None -> (
        ignore (Sys.command "dune build bin/acc.exe > /dev/null 2>&1");
        match find () with
        | Some p -> p
        | None -> failwith "faults bench: cannot locate acc.exe")
  in
  let req_files =
    List.filteri (fun i _ -> i < 3) Csources.all
    |> List.map (fun (name, src) ->
           let f = Filename.temp_file ("acc_faults_" ^ name) ".c" in
           let oc = open_out f in
           output_string oc src;
           close_out oc;
           f)
  in
  let mkdtemp () =
    let d = Filename.temp_file "acc_bench_faults" ".d" in
    Sys.remove d;
    d
  in
  (* Volatile JSON sections: the store and pool counter objects (flat, so
     the first '}' closes them) and the diagnostics array. *)
  let find_sub s key from =
    let klen = String.length key and n = String.length s in
    let rec go i =
      if i + klen > n then None
      else if String.sub s i klen = key then Some i
      else go (i + 1)
    in
    go from
  in
  let strip_to close key s =
    match find_sub s key 0 with
    | None -> s
    | Some i -> (
      match String.index_from_opt s i close with
      | None -> s
      | Some j -> String.sub s 0 i ^ String.sub s (j + 1) (String.length s - j - 1))
  in
  let strip line =
    line
    |> strip_to '}' "\"store\":{"
    |> strip_to '}' "\"pool\":{"
    |> strip_to ']' "\"diagnostics\":["
  in
  let json_int key s =
    match find_sub s (Printf.sprintf "\"%s\":" key) 0 with
    | None -> -1
    | Some i ->
      let start = i + String.length key + 3 in
      let stop = ref start in
      while
        !stop < String.length s && s.[!stop] >= '0' && s.[!stop] <= '9'
      do incr stop done;
      (try int_of_string (String.sub s start (!stop - start)) with _ -> -1)
  in
  let p95 l =
    let sorted = List.sort compare l in
    let n = List.length sorted in
    if n = 0 then 0. else List.nth sorted (min (n - 1) (95 * n / 100))
  in
  let mean l =
    if l = [] then 0.
    else List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  let warm_reps = 30 in
  let run_rate rate =
    let dir = mkdtemp () in
    let inject =
      if rate = 0. then ""
      else
        Printf.sprintf " --inject 'io_error:%g,worker_crash:%g,seed:42'" rate
          (rate /. 2.)
    in
    let cmd =
      Printf.sprintf "%s serve --store %s%s 2> /dev/null" (Filename.quote acc_exe)
        (Filename.quote dir) inject
    in
    let ic, oc = Unix.open_process cmd in
    let request f =
      let t0 = Unix.gettimeofday () in
      output_string oc ("translate " ^ f ^ "\n");
      flush oc;
      let line = input_line ic in
      (line, Unix.gettimeofday () -. t0)
    in
    (* Cold: the store is empty, each file records and saves; warm: every
       subsequent request replays. *)
    let cold = List.map request req_files in
    let t0 = Unix.gettimeofday () in
    let warm =
      List.init warm_reps (fun i ->
          request (List.nth req_files (i mod List.length req_files)))
    in
    let warm_wall = Unix.gettimeofday () -. t0 in
    output_string oc "status\n";
    flush oc;
    let status = input_line ic in
    ignore (Unix.close_process (ic, oc));
    let responses = List.map fst (cold @ warm) in
    let ok =
      List.for_all
        (fun l -> String.length l >= 11 && String.sub l 0 11 = "{\"ok\":true,")
        responses
    in
    let lat = List.map snd in
    ( rate,
      mean (lat cold),
      mean (lat warm),
      p95 (lat warm),
      float_of_int warm_reps /. warm_wall,
      json_int "retries" status,
      json_int "quarantined" status,
      json_int "worker_restarts" status,
      json_int "worker_crashes" status,
      ok,
      List.map strip responses )
  in
  let rates = [ 0.; 0.01; 0.05 ] in
  let measured = List.map run_rate rates in
  List.iter Sys.remove req_files;
  let baseline_responses =
    match measured with
    | (_, _, _, _, _, _, _, _, _, _, r) :: _ -> r
    | [] -> []
  in
  let all_ok =
    List.for_all (fun (_, _, _, _, _, _, _, _, _, ok, _) -> ok) measured
  in
  let divergence =
    List.exists
      (fun (_, _, _, _, _, _, _, _, _, _, r) -> r <> baseline_responses)
      measured
  in
  let rows =
    List.map
      (fun (rate, cold_m, warm_m, warm_p, rps, retries, quar, rest, _, _, _) ->
        [
          Printf.sprintf "%.0f%%" (100. *. rate);
          Printf.sprintf "%.4f" cold_m;
          Printf.sprintf "%.4f" warm_m;
          Printf.sprintf "%.4f" warm_p;
          Printf.sprintf "%.1f" rps;
          string_of_int retries;
          string_of_int quar;
          string_of_int rest;
        ])
      measured
  in
  print_string
    (Ac_stats.render_table
       ~header:
         [ "Faults"; "Cold mean(s)"; "Warm mean(s)"; "Warm p95(s)"; "Warm req/s";
           "Retries"; "Quar"; "Restarts" ]
       rows);
  Printf.printf
    "\n%d requests per rate over %d files; all requests ok: %s;\n\
     divergence across fault rates (counters stripped): %s.\n"
    (warm_reps + List.length req_files)
    (List.length req_files)
    (if all_ok then "yes" else "NO")
    (if divergence then "DIVERGED" else "none");
  let per_rate_json =
    String.concat ",\n  "
      (List.map
         (fun (rate, cold_m, warm_m, warm_p, rps, retries, quar, rest, crashes, ok, _) ->
           Printf.sprintf
             "{\"rate\":%.3f,\"cold_mean_s\":%.6f,\"warm_mean_s\":%.6f,\"warm_p95_s\":%.6f,\"warm_req_per_s\":%.1f,\"retries\":%d,\"quarantined\":%d,\"worker_restarts\":%d,\"worker_crashes\":%d,\"all_ok\":%b}"
             rate cold_m warm_m warm_p rps retries quar rest crashes ok)
         measured)
  in
  let json =
    Printf.sprintf
      "{\"experiment\":\"faults\",\"requests_per_rate\":%d,\"files\":%d,\n\
       \ \"all_ok\":%b,\"divergence\":%b,\n\
       \ \"per_rate\":[%s]}\n"
      (warm_reps + List.length req_files)
      (List.length req_files) all_ok divergence per_rate_json
  in
  let out = open_out "BENCH_pr7.json" in
  output_string out json;
  close_out out;
  print_endline "wrote BENCH_pr7.json";
  if not all_ok then failwith "faults: a request failed under injected faults";
  if divergence then
    failwith "faults: responses diverged across fault rates"

(* PR 8: multi-client socket throughput.  Drives `acc serve --socket`
   with 1, 2 and 4 closed-loop clients over a warm store and records
   aggregate req/s per client count, plus a 4-client row under a 5%
   injected socket-fault rate and a single-client stdin-mode baseline
   (the PR 7 transport).

   Clients are closed-loop with an explicit think time (set to ~2x the
   measured warm service time, clamped to [1ms, 20ms]): request
   execution is intentionally serialized on the server's main domain
   (one bounded scheduler over shared Pool/Supervisor/Store), so with
   zero think time N clients cannot beat one — concurrency pays off
   exactly when clients spend time between requests, which is what real
   callers do.  With think time t and service time s, one client caps at
   1/(s+t) while N clients approach 1/s; the floor asserted here is
   4 clients >= 1.2x 1 client.

   Floors: every response ok:true, responses byte-identical to the
   per-file warm references at every client count (stripped of volatile
   sections under injection only), all server exits 0.  Results go to
   BENCH_pr8.json. *)

let net () =
  header "Net: multi-client socket serve throughput (PR 8)";
  let acc_exe =
    let candidates =
      [ "_build/default/bin/acc.exe"; "../bin/acc.exe"; "bin/acc.exe" ]
    in
    let find () = List.find_opt Sys.file_exists candidates in
    match find () with
    | Some p -> p
    | None -> (
        ignore (Sys.command "dune build bin/acc.exe > /dev/null 2>&1");
        match find () with
        | Some p -> p
        | None -> failwith "net bench: cannot locate acc.exe")
  in
  let req_files =
    List.filteri (fun i _ -> i < 3) Csources.all
    |> List.map (fun (name, src) ->
           let f = Filename.temp_file ("acc_net_" ^ name) ".c" in
           let oc = open_out f in
           output_string oc src;
           close_out oc;
           f)
  in
  let nfiles = List.length req_files in
  let store_dir =
    let d = Filename.temp_file "acc_bench_net" ".d" in
    Sys.remove d;
    d
  in
  let find_sub s key from =
    let klen = String.length key and n = String.length s in
    let rec go i =
      if i + klen > n then None
      else if String.sub s i klen = key then Some i
      else go (i + 1)
    in
    go from
  in
  let strip_to close key s =
    match find_sub s key 0 with
    | None -> s
    | Some i -> (
      match String.index_from_opt s i close with
      | None -> s
      | Some j -> String.sub s 0 i ^ String.sub s (j + 1) (String.length s - j - 1))
  in
  let strip line =
    line
    |> strip_to '}' "\"store\":{"
    |> strip_to '}' "\"pool\":{"
    |> strip_to ']' "\"diagnostics\":["
  in
  let with_stdin_session f =
    let cmd =
      Printf.sprintf "%s serve --store %s 2> /dev/null" (Filename.quote acc_exe)
        (Filename.quote store_dir)
    in
    let ic, oc = Unix.open_process cmd in
    let request file =
      output_string oc ("translate " ^ file ^ "\n");
      flush oc;
      input_line ic
    in
    let r = f request in
    ignore (Unix.close_process (ic, oc));
    r
  in
  (* Session 1: prewarm the store, so every measured request below is a
     warm replay — deterministic response bytes (per-request store
     counters always all-hits) independent of client interleaving. *)
  with_stdin_session (fun request -> List.iter (fun f -> ignore (request f)) req_files);
  (* Session 2: per-file reference responses and the warm service time. *)
  let refs = Hashtbl.create 8 in
  let service_s =
    with_stdin_session (fun request ->
        List.iter (fun f -> Hashtbl.replace refs f (request f)) req_files;
        let n = 15 in
        let t0 = Unix.gettimeofday () in
        for i = 0 to n - 1 do
          ignore (request (List.nth req_files (i mod nfiles)))
        done;
        (Unix.gettimeofday () -. t0) /. float_of_int n)
  in
  let think_s = Float.min 0.02 (Float.max 0.001 (2. *. service_s)) in
  let n_per_client = 30 in
  let client_reqs = List.init n_per_client (fun i -> List.nth req_files (i mod nfiles)) in
  (* Session 3: the single-client stdin baseline (PR 7's transport), with
     the same think time the socket clients use. *)
  let stdin_rps =
    with_stdin_session (fun request ->
        let t0 = Unix.gettimeofday () in
        List.iter
          (fun f ->
            let r = request f in
            if r <> Hashtbl.find refs f then failwith "net: stdin baseline diverged";
            Unix.sleepf think_s)
          client_reqs;
        float_of_int n_per_client /. (Unix.gettimeofday () -. t0))
  in
  let send_all fd s =
    let b = Bytes.unsafe_of_string s in
    let ofs = ref 0 in
    while !ofs < Bytes.length b do
      ofs := !ofs + Unix.write fd b !ofs (Bytes.length b - !ofs)
    done
  in
  let run_socket ?(inject = "") nclients =
    let sock = Filename.temp_file "acc_net" ".sock" in
    Sys.remove sock;
    let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
    let args =
      [ "acc"; "serve"; "--store"; store_dir; "--socket"; sock; "--max-inflight"; "256" ]
      @ (if inject = "" then [] else [ "--inject"; inject ])
    in
    let pid = Unix.create_process acc_exe (Array.of_list args) null null null in
    Unix.close null;
    let rec wait_sock tries =
      if tries = 0 then failwith "net: server socket never appeared";
      match (Unix.stat sock).Unix.st_kind with
      | Unix.S_SOCK -> ()
      | _ -> failwith "net: socket path is not a socket"
      | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
        Unix.sleepf 0.025;
        wait_sock (tries - 1)
    in
    wait_sock 200;
    let t0 = Unix.gettimeofday () in
    let doms =
      List.init nclients (fun _ ->
          Domain.spawn (fun () ->
              let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
              Unix.connect fd (Unix.ADDR_UNIX sock);
              let ic = Unix.in_channel_of_descr fd in
              let resps =
                List.map
                  (fun f ->
                    send_all fd ("translate " ^ f ^ "\n");
                    let r = input_line ic in
                    Unix.sleepf think_s;
                    (f, r))
                  client_reqs
              in
              (try Unix.close fd with Unix.Unix_error _ -> ());
              resps))
    in
    let results = List.map Domain.join doms in
    let wall = Unix.gettimeofday () -. t0 in
    Unix.kill pid Sys.sigterm;
    let code = match Unix.waitpid [] pid with _, Unix.WEXITED c -> c | _ -> -1 in
    let norm = if inject = "" then fun s -> s else strip in
    let diverged =
      List.exists
        (List.exists (fun (f, r) -> norm r <> norm (Hashtbl.find refs f)))
        results
    in
    let ok =
      List.for_all
        (List.for_all (fun (_, r) ->
             String.length r >= 11 && String.sub r 0 11 = "{\"ok\":true,"))
        results
    in
    (float_of_int (nclients * n_per_client) /. wall, code, ok, diverged)
  in
  let clean = List.map (fun n -> (n, run_socket n)) [ 1; 2; 4 ] in
  let fault_rate = 0.05 in
  let fault_row =
    run_socket ~inject:(Printf.sprintf "io_error:%g,seed:13" fault_rate) 4
  in
  List.iter Sys.remove req_files;
  let r1 = match clean with (_, (r, _, _, _)) :: _ -> r | [] -> 0. in
  let r4 =
    match List.find_opt (fun (n, _) -> n = 4) clean with
    | Some (_, (r, _, _, _)) -> r
    | None -> 0.
  in
  let all_exit_0 =
    List.for_all (fun (_, (_, c, _, _)) -> c = 0) clean
    && (match fault_row with _, c, _, _ -> c = 0)
  in
  let all_ok =
    List.for_all (fun (_, (_, _, ok, _)) -> ok) clean
    && (match fault_row with _, _, ok, _ -> ok)
  in
  let diverged =
    List.exists (fun (_, (_, _, _, d)) -> d) clean
    || (match fault_row with _, _, _, d -> d)
  in
  let rows =
    [
      "stdin x1" :: Printf.sprintf "%.1f" stdin_rps
      :: Ac_stats.speedup ~baseline:r1 stdin_rps :: [ "0%" ];
    ]
    @ List.map
        (fun (n, (rps, _, _, _)) ->
          [
            Printf.sprintf "socket x%d" n;
            Printf.sprintf "%.1f" rps;
            Ac_stats.speedup ~baseline:r1 rps;
            "0%";
          ])
        clean
    @ [
        (let rps, _, _, _ = fault_row in
         [
           "socket x4"; Printf.sprintf "%.1f" rps;
           Ac_stats.speedup ~baseline:r1 rps;
           Printf.sprintf "%.0f%%" (100. *. fault_rate);
         ]);
      ]
  in
  print_string
    (Ac_stats.render_table ~header:[ "Clients"; "Req/s"; "vs socket x1"; "Faults" ] rows);
  Printf.printf
    "\n%d requests per client, think %.1fms (2x warm service %.1fms);\n\
     all ok: %s; divergence: %s; all server exits 0: %s.\n"
    n_per_client (1000. *. think_s) (1000. *. service_s)
    (if all_ok then "yes" else "NO")
    (if diverged then "DIVERGED" else "none")
    (if all_exit_0 then "yes" else "NO");
  let per_clients_json =
    String.concat ","
      (List.map
         (fun (n, (rps, _, _, _)) ->
           Printf.sprintf "{\"clients\":%d,\"req_per_s\":%.1f,\"speedup_vs_1\":%.2f}"
             n rps (if r1 > 0. then rps /. r1 else 0.))
         clean)
  in
  let fault_json =
    let rps, _, _, _ = fault_row in
    Printf.sprintf "{\"clients\":4,\"rate\":%.2f,\"req_per_s\":%.1f}" fault_rate rps
  in
  let json =
    Printf.sprintf
      "{\"experiment\":\"net\",\"n_per_client\":%d,\"think_ms\":%.2f,\"service_ms\":%.2f,\n\
       \ \"stdin_req_per_s\":%.1f,\"per_clients\":[%s],\"faulted\":%s,\n\
       \ \"all_ok\":%b,\"divergence\":%b,\"all_exit_0\":%b}\n"
      n_per_client (1000. *. think_s) (1000. *. service_s) stdin_rps
      per_clients_json fault_json all_ok diverged all_exit_0
  in
  let out = open_out "BENCH_pr8.json" in
  output_string out json;
  close_out out;
  print_endline "wrote BENCH_pr8.json";
  if not all_ok then failwith "net: a request failed";
  if diverged then failwith "net: socket responses diverged from the warm references";
  if not all_exit_0 then failwith "net: a server did not exit 0 on SIGTERM";
  if r4 < 1.2 *. r1 then
    failwith
      (Printf.sprintf "net: 4-client throughput %.1f req/s not >= 1.2x 1-client %.1f"
         r4 r1)

(* ------------------------------------------------------------------ *)
(* PR 9: tracing overhead.  Two bounds back the "zero-cost when off"
   claim in lib/obs:

   - OFF: an instrumentation site costs one atomic load.  Measured
     directly (10M gated no-op spans), then scaled by the number of
     spans a full-corpus translate actually records — that projected
     cost must be <= 1% of the untraced run.  (The projection is the
     honest measurement: the real delta is far below timer noise.)
   - ON: full-corpus translate with tracing enabled vs disabled, paired
     within each round, median per-round ratio <= 1.05.

   And the invisibility floor: the traced runs' results are
   fingerprint-identical to the untraced runs'.

   Results go to BENCH_pr9.json in the working directory. *)

let obs () =
  header "Obs: tracing overhead (PR 9)";
  let module Obs = Ac_obs.Obs in
  (* Fixed GC geometry (restored on exit), as in the store/interproc
     experiments: sub-5% wall-clock comparisons drift more than that
     between identical processes under the default geometry. *)
  let gc0 = Gc.get () in
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ();
      Gc.set gc0)
  @@ fun () ->
  Gc.set { gc0 with Gc.minor_heap_size = 1 lsl 22; Gc.space_overhead = 200 };
  let options = { Driver.default_options with Driver.keep_going = true } in
  let corpus = Csources.all in
  let translate_corpus () =
    List.iter (fun (_, src) -> ignore (Driver.run ~options src)) corpus
  in
  let fingerprint () =
    let b = Buffer.create 4096 in
    List.iter
      (fun (name, src) ->
        let res = Driver.run ~options src in
        Buffer.add_string b name;
        List.iter
          (fun fr ->
            Buffer.add_string b fr.Driver.fr_name;
            Buffer.add_string b (Driver.level_name (Driver.level_of fr));
            Buffer.add_string b (Mprint.func_to_string fr.Driver.fr_final))
          res.Driver.funcs;
        List.iter (fun d -> Buffer.add_string b d.Driver.dg_name) res.Driver.degraded;
        Buffer.add_string b (string_of_int res.Driver.budget_hits))
      corpus;
    Buffer.contents b
  in
  let median l =
    let sorted = List.sort compare l in
    List.nth sorted (List.length l / 2)
  in
  (* Invisibility: the traced corpus results match the untraced ones. *)
  Obs.set_enabled false;
  let fp_off = fingerprint () in
  Obs.reset ();
  Obs.set_enabled true;
  let fp_on = fingerprint () in
  let events_per_run = List.length (Obs.harvest ()) / List.length corpus in
  Obs.reset ();
  Obs.set_enabled false;
  let divergence = not (String.equal fp_off fp_on) in
  (* Paired rounds: disabled then enabled inside each round, per-round
     ratio, median across rounds. *)
  let rounds = 7 in
  let time f =
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let pairs =
    List.init rounds (fun _ ->
        Obs.set_enabled false;
        let off_s = time translate_corpus in
        Obs.reset ();
        Obs.set_enabled true;
        let on_s = time translate_corpus in
        Obs.set_enabled false;
        Obs.reset ();
        (off_s, on_s))
  in
  let off_s = median (List.map fst pairs) in
  let on_s = median (List.map snd pairs) in
  let ratio = median (List.map (fun (o, n) -> n /. o) pairs) in
  (* The off-path gate: 10M no-op spans with tracing disabled.  Each is
     the full instrumentation-site cost (atomic load, branch, call). *)
  let gate_ns =
    let n = 10_000_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (Sys.opaque_identity (Obs.span ~cat:"bench" "gate" (fun () -> 0)))
    done;
    1e9 *. (Unix.gettimeofday () -. t0) /. float_of_int n
  in
  (* A span is a B/E pair; instants count as one site each.  Charging
     every event one gate check over-counts, which is the safe side. *)
  let sites_per_run = events_per_run in
  let off_overhead_pct =
    let per_run_s = float_of_int sites_per_run *. gate_ns *. 1e-9 in
    100. *. per_run_s /. (off_s /. float_of_int (List.length corpus))
  in
  let on_overhead_pct = 100. *. (ratio -. 1.) in
  print_string
    (Ac_stats.render_table
       ~header:[ "Config"; "Corpus translate (s)"; "Overhead" ]
       [
         [ "tracing off"; Printf.sprintf "%.4f" off_s; "baseline" ];
         [ "tracing on"; Printf.sprintf "%.4f" on_s;
           Printf.sprintf "%.2f%%" on_overhead_pct ];
       ]);
  Printf.printf
    "\ngate: %.1fns per disabled site, %d events per translated file;\n\
     projected off-path overhead %.4f%% (floor: <= 1%%);\n\
     enabled overhead %.2f%% (floor: <= 5%%); divergence: %s.\n"
    gate_ns events_per_run off_overhead_pct on_overhead_pct
    (if divergence then "DIVERGED" else "none");
  let json =
    Printf.sprintf
      "{\"experiment\":\"obs\",\"rounds\":%d,\"corpus_files\":%d,\n\
       \ \"off_s\":%.6f,\"on_s\":%.6f,\"ratio\":%.4f,\n\
       \ \"enabled_overhead_pct\":%.2f,\"gate_ns\":%.2f,\n\
       \ \"events_per_file\":%d,\"disabled_overhead_pct\":%.4f,\n\
       \ \"divergence\":%b}\n"
      rounds (List.length corpus) off_s on_s ratio on_overhead_pct gate_ns
      events_per_run off_overhead_pct divergence
  in
  let out = open_out "BENCH_pr9.json" in
  output_string out json;
  close_out out;
  print_endline "wrote BENCH_pr9.json";
  if divergence then failwith "obs: traced results diverged from untraced";
  if off_overhead_pct > 1.0 then
    failwith
      (Printf.sprintf "obs: disabled overhead %.4f%% above the 1%% bound"
         off_overhead_pct);
  if ratio > 1.05 then
    failwith
      (Printf.sprintf "obs: enabled/disabled ratio %.4f above the 1.05 bound" ratio)

(* ------------------------------------------------------------------ *)
(* PR 10: the full telemetry plane.  Three bounds:

   - DISARMED: kernel hook installed but the Effort gate off, tracing
     off — the per-mint cost is one ref read and one atomic load.
     Paired full-corpus rounds vs the fully-uninstalled baseline,
     median ratio <= 1.01.
   - ENABLED: everything armed — spans on, flight-recorder ring at its
     default 65536 slots, kernel hook counting every mint, chain/
     discharge accounting live.  Median paired ratio <= 1.05.
   - Invisibility: the armed runs' results are fingerprint-identical to
     the bare runs'.

   Results go to BENCH_pr10.json in the working directory. *)

let telemetry () =
  header "Telemetry: metrics + flight recorder + effort accounting (PR 10)";
  let module Obs = Ac_obs.Obs in
  let module Effort = Ac_obs.Effort in
  let gc0 = Gc.get () in
  let disarm () =
    Thm.set_obs_hook None;
    Effort.set_enabled false;
    Effort.reset ();
    Obs.set_enabled false;
    Obs.set_ring None;
    Obs.reset ()
  in
  let arm_installed () =
    (* hook installed but gate closed: not a state `acc` actually runs in
       (the CLI installs the hook and opens the gate together), measured
       as the informational cost of hook dispatch alone *)
    disarm ();
    Thm.set_obs_hook (Some Effort.on_rule)
  in
  let arm_enabled () =
    Thm.set_obs_hook (Some Effort.on_rule);
    Effort.set_enabled true;
    Obs.set_ring (Some 65536);
    Obs.set_enabled true
  in
  Fun.protect
    ~finally:(fun () ->
      disarm ();
      Gc.set gc0)
  @@ fun () ->
  Gc.set { gc0 with Gc.minor_heap_size = 1 lsl 22; Gc.space_overhead = 200 };
  let options = { Driver.default_options with Driver.keep_going = true } in
  let corpus = Csources.all in
  let translate_corpus () =
    List.iter (fun (_, src) -> ignore (Driver.run ~options src)) corpus
  in
  let fingerprint () =
    let b = Buffer.create 4096 in
    List.iter
      (fun (name, src) ->
        let res = Driver.run ~options src in
        Buffer.add_string b name;
        List.iter
          (fun fr ->
            Buffer.add_string b fr.Driver.fr_name;
            Buffer.add_string b (Driver.level_name (Driver.level_of fr));
            Buffer.add_string b (Mprint.func_to_string fr.Driver.fr_final))
          res.Driver.funcs;
        List.iter (fun d -> Buffer.add_string b d.Driver.dg_name) res.Driver.degraded;
        Buffer.add_string b (string_of_int res.Driver.budget_hits))
      corpus;
    Buffer.contents b
  in
  (* Invisibility first: armed results byte-match bare results, and the
     hook actually counted the run. *)
  disarm ();
  let fp_bare = fingerprint () in
  arm_enabled ();
  let fp_armed = fingerprint () in
  let applications = Effort.total_applications () in
  disarm ();
  let divergence = not (String.equal fp_bare fp_armed) in
  let counted = applications > 0 in
  (* Measurement. Hard-won methodology, in order of importance:

     - Pass-level interleaving: all four configs take turns translating
       the corpus once (~10 ms) inside each cycle, so a load spike or
       frequency excursion on a shared box lands on every config alike
       instead of on whichever config owned that second.
     - Low percentile, not median, not minimum: a sample's time is its
       true cost plus nonnegative noise, so a low quantile over many
       cycles converges on the noise floor for every config alike.  The
       raw minimum is fragile the other way — one config can catch a
       rare super-clean window (a frequency boost, an empty run queue)
       that its twin never sees in hundreds of tries, skewing every
       ratio; p10 keeps the noise-filtering property while shrugging
       off single outliers.
     - A/A validation: the "disabled" config runs the hook-uninstalled
       production path, which is the SAME machine state as bare — its
       ratio measures the harness, not the code.  A measurement is
       accepted only when that ratio resolves within the 1% bound AND
       the bounded configs resolve under their bounds; while either
       fails, another batch of cycles is pooled into the same sample
       sets (bounded attempts) — low quantiles only firm up with more
       samples, so pooling converges if the true cost is in bounds and
       exhausts attempts honestly if it is not.
     - The order within a cycle is a seeded random permutation (a fixed
       rotation keeps each config's predecessor constant, so a
       predecessor's cache/allocator residue becomes a systematic bias
       the minimum can never shed), and a full major collection at each
       cycle start stops one config's allocation debt from billing the
       next; GC work a config causes inside its own pass stays in that
       pass, where it belongs. *)
  let cycles = 60 in
  let steps =
    [|
      (fun () -> disarm ());
      (fun () -> disarm () (* disabled = production path, A/A *));
      (fun () -> disarm (); arm_installed ());
      (fun () -> disarm (); arm_enabled ());
    |]
  in
  (* [samples] accumulates across attempts: a retry pools more cycles
     into the same per-config sample sets instead of throwing the first
     batch away. *)
  let samples = Array.init 4 (fun _ -> ref []) in
  let rng = Random.State.make [| 0x7e1e |] in
  let order = [| 0; 1; 2; 3 |] in
  let p10 l =
    let a = Array.of_list l in
    Array.sort compare a;
    a.(Array.length a / 10)
  in
  let measure () =
    for _c = 0 to cycles - 1 do
      for i = 3 downto 1 do
        let k = Random.State.int rng (i + 1) in
        let t = order.(i) in
        order.(i) <- order.(k);
        order.(k) <- t
      done;
      Gc.full_major ();
      for i = 0 to 3 do
        let j = order.(i) in
        steps.(j) ();
        let t0 = Unix.gettimeofday () in
        translate_corpus ();
        let dt = Unix.gettimeofday () -. t0 in
        samples.(j) := dt :: !(samples.(j))
      done
    done;
    disarm ();
    (p10 !(samples.(0)), p10 !(samples.(1)), p10 !(samples.(2)), p10 !(samples.(3)))
  in
  let attempts = 8 in
  let rec attempt k =
    let ((b, d, _, a) as r) = measure () in
    let aa_ok = Float.abs ((d /. b) -. 1.) <= 0.01 in
    let bounds_ok = d /. b <= 1.01 && a /. b <= 1.05 in
    if (aa_ok && bounds_ok) || k >= attempts then (r, k)
    else begin
      Printf.printf
        "  (attempt %d: A/A ratio %.4f, armed ratio %.4f — pooling more cycles)\n%!"
        k (d /. b) (a /. b);
      attempt (k + 1)
    end
  in
  let (bare_s, disarmed_s, installed_s, armed_s), attempts_used = attempt 1 in
  let disarmed_ratio = disarmed_s /. bare_s in
  let installed_ratio = installed_s /. bare_s in
  let armed_ratio = armed_s /. bare_s in
  let pct r = 100. *. (r -. 1.) in
  print_string
    (Ac_stats.render_table
       ~header:
         [ "Config";
           Printf.sprintf "p10 of %d passes (s)" (List.length !(samples.(0)));
           "Overhead" ]
       [
         [ "baseline"; Printf.sprintf "%.4f" bare_s; "baseline" ];
         [ "disabled (no hook, A/A)"; Printf.sprintf "%.4f" disarmed_s;
           Printf.sprintf "%.2f%%" (pct disarmed_ratio) ];
         [ "hook installed, gate off"; Printf.sprintf "%.4f" installed_s;
           Printf.sprintf "%.2f%%" (pct installed_ratio) ];
         [ "fully armed (ring 65536)"; Printf.sprintf "%.4f" armed_s;
           Printf.sprintf "%.2f%%" (pct armed_ratio) ];
       ]);
  Printf.printf
    "\n%d kernel rule applications counted per corpus pass;\n\
     disabled overhead %.2f%% (bound: <= 1%%); armed overhead %.2f%% (bound: <= 5%%);\n\
     hook-dispatch-only overhead %.2f%% (informational); divergence: %s.\n"
    applications (pct disarmed_ratio) (pct armed_ratio) (pct installed_ratio)
    (if divergence then "DIVERGED" else "none");
  let json =
    Printf.sprintf
      "{\"experiment\":\"telemetry\",\"cycles\":%d,\"attempts\":%d,\"corpus_files\":%d,\n\
       \ \"bare_s\":%.6f,\"disabled_s\":%.6f,\"hook_installed_s\":%.6f,\"armed_s\":%.6f,\n\
       \ \"disabled_ratio\":%.4f,\"hook_installed_ratio\":%.4f,\"armed_ratio\":%.4f,\n\
       \ \"disabled_overhead_pct\":%.2f,\"armed_overhead_pct\":%.2f,\n\
       \ \"rule_applications\":%d,\"divergence\":%b}\n"
      cycles attempts_used (List.length corpus) bare_s disarmed_s installed_s armed_s disarmed_ratio
      installed_ratio
      armed_ratio (pct disarmed_ratio) (pct armed_ratio) applications divergence
  in
  let out = open_out "BENCH_pr10.json" in
  output_string out json;
  close_out out;
  print_endline "wrote BENCH_pr10.json";
  if divergence then failwith "telemetry: armed results diverged from bare";
  if not counted then failwith "telemetry: armed run counted no rule applications";
  if disarmed_ratio > 1.01 then
    failwith
      (Printf.sprintf "telemetry: disabled ratio %.4f above the 1.01 bound"
         disarmed_ratio);
  if armed_ratio > 1.05 then
    failwith
      (Printf.sprintf "telemetry: armed ratio %.4f above the 1.05 bound" armed_ratio)

let all : (string * (unit -> unit)) list =
  [
    ("fig1", fig1); ("fig2", fig2); ("table1", table1); ("table2", table2);
    ("table3", table3); ("fig3", fig3); ("fig4", fig4); ("table4", table4);
    ("fig5", fig5); ("footnote2", footnote2); ("suzuki", suzuki); ("fig6", fig6);
    ("fig8", fig8); ("table5", table5); ("table6", table6); ("memset", memset);
    ("custom_rule", custom_rule); ("ablation", ablation); ("analysis", analysis);
    ("robustness", robustness); ("perf", perf); ("store", store);
    ("interproc", interproc); ("faults", faults); ("net", net); ("obs", obs);
    ("telemetry", telemetry);
  ]
