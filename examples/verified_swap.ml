(* Verifying `swap` on the lifted heap (paper Secs 4.1-4.5).

     dune exec examples/verified_swap.exe

   Shows the full workflow a verification engineer uses:
   1. abstract the C with heap abstraction on,
   2. state the Hoare triple on the split heap (the paper's Sec 4.2 form),
   3. generate verification conditions with the WP calculus,
   4. discharge them with the automatic prover.

   Also shows the byte-level triple the engineer would *otherwise* face
   (Fig 3 / the strengthened precondition of Sec 4.1). *)

module B = Ac_bignum
module T = Ac_prover.Term
module Solver = Ac_prover.Solver
module Vc = Ac_hoare.Vc
module Driver = Autocorres.Driver
module Ty = Ac_lang.Ty

let u32 : Ty.cty = Ty.Cword (Ty.Unsigned, Ty.W32)

let () =
  print_endline "=== verified swap ===";
  Printf.printf "C source:\n%s\n" Ac_cases.Csources.swap_c;

  (* Without heap abstraction: the byte-level mess of Fig 3. *)
  let low_options =
    { Driver.default_options with defaults = { Driver.default_func_options with Driver.word_abs = false; heap_abs = false } }
  in
  let low = Driver.run ~options:low_options Ac_cases.Csources.swap_c in
  let low_fr = Option.get (Driver.find_result low "swap") in
  Printf.printf "Without heap abstraction (Fig 3): the program you'd reason about is\n%s\n"
    (Ac_monad.Mprint.func_to_string low_fr.Driver.fr_final);

  (* With heap abstraction: Fig 5. *)
  let options =
    { Driver.default_options with defaults = { Driver.default_func_options with Driver.word_abs = false; heap_abs = true } }
  in
  let res = Driver.run ~options Ac_cases.Csources.swap_c in
  let fr = Option.get (Driver.find_result res "swap") in
  Printf.printf "With heap abstraction (Fig 5):\n%s\n"
    (Ac_monad.Mprint.func_to_string fr.Driver.fr_final);

  (* The Hoare triple of Sec 4.5:
       {is_valid a ∧ is_valid b ∧ s[a] = x ∧ s[b] = y ∧ a ≠ b}
         swap' a b
       {s[a] = y ∧ s[b] = x} *)
  let cfg = Vc.make_config res.Driver.final_prog in
  let x0 = T.Var ("x0", T.Sint) and y0 = T.Var ("y0", T.Sint) in
  let heap st = Vc.state_get st (Vc.heap_name u32) in
  let valid st = Vc.state_get st (Vc.valid_name u32) in
  let triple =
    {
      Vc.t_pre =
        (fun args st ->
          match List.map Vc.tv_to_term args with
          | [ a; b ] ->
            T.conj
              [ T.select_t (valid st) a; T.select_t (valid st) b;
                T.eq_t (T.select_t (heap st) a) x0; T.eq_t (T.select_t (heap st) b) y0;
                T.not_t (T.eq_t a b) ]
          | _ -> assert false);
      t_post =
        (fun args _rv _st0 st ->
          match List.map Vc.tv_to_term args with
          | [ a; b ] ->
            T.and_t
              (T.eq_t (T.select_t (heap st) a) y0)
              (T.eq_t (T.select_t (heap st) b) x0)
          | _ -> assert false);
    }
  in
  let vcs = Vc.func_vcs cfg "swap" triple in
  List.iter
    (fun (label, vc) ->
      let outcome, stats = Solver.prove vc in
      Printf.printf "%-28s %s (%d branches, %d closed by CC, %d by arithmetic)\n" label
        (match outcome with
        | Solver.Proved -> "PROVED"
        | Solver.Refuted _ -> "refuted"
        | Solver.Unknown _ -> "unknown")
        stats.Solver.branches stats.Solver.cc_closed stats.Solver.la_closed)
    vcs;
  print_endline
    "\nThe guards (is_valid a, is_valid b) became proof obligations and were\n\
     discharged from the precondition; no alignment, null or wrap reasoning\n\
     was needed — the paper's Sec 4.2 contrast with the byte-level triple."
