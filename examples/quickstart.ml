(* Quickstart: abstract a C function and look at every pipeline stage.

     dune exec examples/quickstart.exe

   AutoCorres (PLDI 2014) turns low-level C into an abstract monadic
   specification, together with a checkable proof that the abstraction is
   sound.  This example pushes the paper's running examples (max, gcd, the
   binary-search midpoint) through the pipeline and prints what a
   verification engineer would actually work with. *)

module Driver = Autocorres.Driver
module Mprint = Ac_monad.Mprint

let show_stages src fname =
  Printf.printf "------------------------------------------------------------\n";
  Printf.printf "C source:\n%s\n" src;
  let res = Driver.run src in
  let fr = Option.get (Driver.find_result res fname) in
  Printf.printf "C parser output (Simpl, the trusted literal translation):\n%s\n"
    (Ac_simpl.Print.func_to_string fr.Driver.fr_simpl);
  Printf.printf "AutoCorres output (what you reason about):\n%s\n"
    (Mprint.func_to_string fr.Driver.fr_final);
  (* The refinement theorems are real objects: re-check them. *)
  (match Driver.check_all res with
  | Ok () -> Printf.printf "refinement derivations: re-validated by the kernel checker\n"
  | Error e -> Printf.printf "refinement derivations: FAILED (%s)\n" e);
  (match fr.Driver.fr_chain with
  | Some chain ->
    Printf.printf "end-to-end theorem: %s refines its Simpl input (%d rule applications)\n"
      fname (Ac_kernel.Thm.size chain)
  | None -> ());
  (* And the abstraction is executable: differential-test it. *)
  let report = Autocorres.Refine_test.check_program ~cases:40 res in
  Printf.printf
    "differential refinement test: %d/%d cases agree (%d no-claim, %d violations)\n\n"
    report.Autocorres.Refine_test.agreed report.Autocorres.Refine_test.cases
    report.Autocorres.Refine_test.abstract_failed
    (List.length report.Autocorres.Refine_test.violations)

let () =
  print_endline "=== AutoCorres quickstart ===";
  show_stages Ac_cases.Csources.max_c "max";
  show_stages Ac_cases.Csources.gcd_c "gcd";
  show_stages Ac_cases.Csources.mid_c "mid";
  print_endline
    "Note how max becomes `return (if a < b then b else a)` over ideal\n\
     integers, gcd becomes Euclid's algorithm on ℕ with its guards\n\
     discharged, and the midpoint picks up exactly one no-overflow guard."
