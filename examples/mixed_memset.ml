(* Mixing byte-level and lifted code (paper Sec 4.6).

     dune exec examples/mixed_memset.exe

   Heap abstraction requires type-safe memory use, but C programs sometimes
   need byte-level access (memset, memcpy, allocators).  The paper's answer:
   leave such functions in the low-level model and call them from lifted
   code through exec_concrete.  This example keeps my_memset byte-level,
   lifts its caller, and executes the mixed program. *)

module B = Ac_bignum
module Ty = Ac_lang.Ty
module Value = Ac_lang.Value
module Driver = Autocorres.Driver

let () =
  print_endline "=== mixed byte-level / lifted code ===";
  Printf.printf "C source:\n%s\n" Ac_cases.Csources.memset_mixed_c;
  let options =
    {
      Driver.default_options with
      overrides = [ ("my_memset", { Driver.default_func_options with Driver.word_abs = false; heap_abs = false }) ];
    }
  in
  let res = Driver.run ~options Ac_cases.Csources.memset_mixed_c in
  let show name =
    match Driver.find_result res name with
    | Some fr ->
      Printf.printf "%s:\n%s\n" name (Ac_monad.Mprint.func_to_string fr.Driver.fr_final)
    | None -> ()
  in
  show "my_memset";
  show "zero_cell";
  (* Execute the mixed program on a real heap. *)
  let lenv = res.Driver.final_prog.Ac_monad.M.lenv in
  let u32 = Ty.Cword (Ty.Unsigned, Ty.W32) in
  let addr, h = Ac_simpl.Heap.alloc lenv Ac_simpl.Heap.empty u32 in
  let h =
    Ac_simpl.Heap.write_obj lenv h u32 addr
      (Value.vword Ty.Unsigned (Ac_word.of_int Ac_word.W32 0xDEADBEEF))
  in
  let state = Ac_simpl.State.with_heap Ac_simpl.State.empty h in
  (match
     Ac_monad.Interp.run_func res.Driver.final_prog ~fuel:10_000 state "zero_cell"
       [ Value.vptr addr u32 ]
   with
  | Ac_monad.Interp.Returns (v, _) ->
    Printf.printf "zero_cell on a cell holding 0xDEADBEEF returned: %s\n"
      (Value.to_string v)
  | _ -> print_endline "execution failed");
  print_endline
    "\nThe paper's Sec 4.6 triple —\n\
    \  {is_valid_w32 s p} exec_concrete (memset' p 0 4) {s[p] = 0}\n\
     — is provable once, by low-level reasoning, and from then on lifted\n\
     callers reason only about the abstract effect."
