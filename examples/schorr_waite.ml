(* The Schorr-Waite case study (paper Sec 5.3).

     dune exec examples/schorr_waite.exe

   "The first mountain that any formalism for pointer aliasing should
   climb" (Bornat).  The pipeline abstracts the Fig 8 C implementation into
   a split-heap program; Mehta and Nipkow's correctness statement (Fig 7)
   is then validated by bounded exhaustive checking over every graph shape
   up to 3 nodes plus random larger graphs — including cyclic and shared
   structures, which is where pointer-reversal algorithms break. *)

open Ac_cases

let () =
  print_endline "=== Schorr-Waite graph marking ===";
  Printf.printf "C source (Fig 8):\n%s\n" Csources.schorr_waite_c;
  let res = Autocorres.Driver.run Csources.schorr_waite_c in
  (match Autocorres.Driver.find_result res "schorr_waite" with
  | Some fr ->
    Printf.printf "AutoCorres output:\n%s\n"
      (Ac_monad.Mprint.func_to_string fr.Autocorres.Driver.fr_final)
  | None -> ());
  print_endline "Correctness statement (Fig 7): after the run,";
  print_endline
    "  - a node is marked iff it is reachable from the root, and\n\
    \  - every node's l/r pointers equal their initial values.\n";
  let t0 = Sys.time () in
  let r = Schorr_waite_proof.run () in
  Printf.printf "Checked %d graphs in %.1fs: %d failures\n"
    r.Schorr_waite_proof.graphs_checked (Sys.time () -. t0)
    (List.length r.Schorr_waite_proof.failures);
  List.iteri (fun i f -> if i < 5 then print_endline ("  " ^ f)) r.Schorr_waite_proof.failures;
  print_endline
    "\n(The same harness rejects mutants — e.g. dropping `t->r = q` from the\n\
     pop branch — see test/test_cases.ml.)"
