(* The in-place list-reversal case study (paper Sec 5.2), end to end.

     dune exec examples/list_reverse.exe

   This is the paper's productivity experiment: take Mehta and Nipkow's
   proof of list reversal — written for an idealised heap a decade before
   AutoCorres — and apply it to the AutoCorres output of real C.  The
   invariant, ghost sequences, lemma library and measure are M/N's; the
   three adjustments are exactly the ones the paper enumerates. *)

module Solver = Ac_prover.Solver
open Ac_cases

let () =
  print_endline "=== in-place list reversal: porting Mehta & Nipkow ===";
  Printf.printf "C source (Fig 6):\n%s\n" Csources.reverse_c;
  let out =
    let res = Autocorres.Driver.run Csources.reverse_c in
    match Autocorres.Driver.find_result res "reverse" with
    | Some fr -> Ac_monad.Mprint.func_to_string fr.Autocorres.Driver.fr_final
    | None -> "<missing>"
  in
  Printf.printf "AutoCorres output:\n%s\n" out;
  print_endline "Invariant (M/N's, with ghost sequences ps and qs):";
  print_endline
    "  islist next valid list ps ∧ islist next valid rev qs ∧\n\
    \  disjoint ps qs ∧ rev Ps0 = rev ps @ qs\n\
    \  measure: |ps|   (the termination argument the paper adds)\n";
  print_endline "Validating the list lemma library (List definitions, Table 6)...";
  (match Listlib.validate_all () with
  | Ok () -> Printf.printf "  %d lemmas validated\n" (List.length Listlib.lemmas)
  | Error e -> Printf.printf "  FAILED: %s\n" e);
  print_endline "Generating and discharging the verification conditions...";
  let r = Reverse_proof.run ~check_lemmas:false () in
  List.iter
    (fun (label, o) ->
      Printf.printf "  %-55s %s\n" label
        (if Solver.is_proved o then "PROVED" else "NOT PROVED"))
    r.Reverse_proof.vcs;
  if r.Reverse_proof.all_proved then
    print_endline
      "\nTotal correctness of the C implementation, via the same invariant\n\
       and proof structure as the decade-older high-level proof."
  else print_endline "\nSome obligations remain open."
