struct node {
  struct node *next;
  unsigned data;
};
struct node *reverse(struct node *list) {
  struct node *rev = NULL;
  while (list) {
    struct node *next = list->next;
    list->next = rev; rev = list; list = next;
  }
  return rev;
}
