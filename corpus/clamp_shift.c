/* Interprocedural discharge: the callee's summary bounds its return
   value, and the callers' shift/div guards are provable only with that
   bound carried across the call. */

unsigned int clamp(unsigned int x) {
  if (x > 15u) {
    return 15u;
  }
  return x;
}

unsigned int shl_clamped(unsigned int v, unsigned int n) {
  unsigned int k;
  k = clamp(n);
  return v << k;
}

unsigned int div_clamped(unsigned int v, unsigned int n) {
  unsigned int d;
  d = clamp(n);
  d = d + 1u;
  return v / d;
}
