unsigned shl_guarded(unsigned x, unsigned n) {
  if (n < 32u) { return x << n; }
  return 0u;
}
int sar_guarded(int x, int n) {
  if (0 <= n) { if (n < 31) { return x >> n; } }
  return 0;
}
