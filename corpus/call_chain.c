/* A layered call graph for exercising the proof store's per-function
   invalidation cones: clamp is a leaf, clamp3 calls clamp, sum3 calls
   clamp3 (so editing clamp must invalidate all three), and scale is an
   independent island whose entry must survive any edit to the chain. */

int clamp(int lo, int hi, int v) {
  if (v < lo) return lo;
  if (hi < v) return hi;
  return v;
}

int clamp3(int v) {
  int r = 0;
  r = clamp(0, 3, v);
  return r;
}

int sum3(int a, int b, int c) {
  int x = 0;
  int y = 0;
  int z = 0;
  x = clamp3(a);
  y = clamp3(b);
  z = clamp3(c);
  return x + y + z;
}

int scale(int v) {
  if (v < 0) return 0;
  return v * 2;
}
