unsigned mid(unsigned l, unsigned r)
{
  unsigned m = (l + r) / 2u;
  return m;
}
