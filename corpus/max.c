int max(int a, int b) {
  if (a < b)
    return b;
  return a;
}
