/* A recursive callee (an SCC cycle in the call graph): the summary
   fixpoint must converge on the return bound before the caller's shift
   guard can be discharged. */

unsigned int walk_up(unsigned int n) {
  unsigned int m;
  unsigned int r;
  if (n >= 8u) {
    return 8u;
  }
  m = n + 1u;
  r = walk_up(m);
  return r;
}

unsigned int shl_walked(unsigned int v) {
  unsigned int k;
  k = walk_up(0u);
  return v << k;
}
