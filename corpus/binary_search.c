int binary_search(unsigned *a, unsigned n, unsigned key)
{
  unsigned l = 0u;
  unsigned r = n;
  while (l < r) {
    unsigned m = (l + r) / 2u;
    if (a[m] == key)
      return (int) m;
    if (a[m] < key)
      l = m + 1u;
    else
      r = m;
  }
  return -1;
}
