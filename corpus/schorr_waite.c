struct node {
  struct node *l;
  struct node *r;
  unsigned m;
  unsigned c;
};
void schorr_waite(struct node *root) {
  struct node *t = root, *p = NULL, *q;
  while (p != NULL || (t != NULL && !t->m)) {
    if (t == NULL || t->m) {
      if (p->c) {
        q = t; t = p; p = p->r; t->r = q;
      } else {
        q = t; t = p->r; p->r = p->l;
        p->l = q; p->c = 1u;
      }
    } else {
      q = p; p = t; t = t->l; p->l = q;
      p->m = 1u; p->c = 0u;
    }
  }
}
