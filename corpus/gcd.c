unsigned gcd(unsigned a, unsigned b) {
  while (b != 0u) {
    unsigned t = b;
    b = a % b;
    a = t;
  }
  return a;
}
