/* Mutually recursive parity, plus a caller above the cycle: the store
   key of each member of the recursion must cover the whole strongly
   connected component (editing is_odd invalidates is_even and parity
   too), which the cone-digest fixpoint handles without special-casing
   cycles. */

unsigned is_even(unsigned n) {
  unsigned r = 0u;
  if (n == 0u) return 1u;
  r = is_odd(n - 1u);
  return r;
}

unsigned is_odd(unsigned n) {
  unsigned r = 0u;
  if (n == 0u) return 0u;
  r = is_even(n - 1u);
  return r;
}

unsigned parity(unsigned n) {
  unsigned e = 0u;
  e = is_even(n);
  if (e == 1u) return 0u;
  return 1u;
}
