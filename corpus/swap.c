void swap(unsigned *a, unsigned *b)
{
  unsigned t = *a;
  *a = *b;
  *b = t;
}
