void my_memset(unsigned char *p, unsigned char v, unsigned n)
{
  unsigned i = 0u;
  while (i < n) {
    p[i] = v;
    i = i + 1u;
  }
}
