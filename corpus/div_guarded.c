int div_pos(int a, int b) {
  if (b > 0) { return a / b; }
  return 0;
}
unsigned bucket(unsigned h, unsigned n) {
  if (n != 0u) { return h % n; }
  return 0u;
}
