/* Parity through a call: make_odd always returns an odd word, so the
   caller's divisor is provably non-zero even though its interval is
   unbounded. */

unsigned int make_odd(unsigned int x) {
  return (x * 2u) + 1u;
}

unsigned int halve_by_odd(unsigned int v, unsigned int x) {
  unsigned int d;
  d = make_odd(x);
  return v / d;
}
