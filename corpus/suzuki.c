struct node {
  struct node *next;
  unsigned data;
};
unsigned suzuki(struct node *w, struct node *x, struct node *y, struct node *z)
{
  w->next = x; x->next = y; y->next = z; x->next = z;
  w->data = 1u; x->data = 2u; y->data = 3u; z->data = 4u;
  return w->next->next->data;
}
