unsigned counter;
void bump(unsigned by) { counter = counter + by; }
unsigned twice(unsigned x) { bump(x); bump(x); return counter; }
