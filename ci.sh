#!/bin/sh
# CI for the AutoCorres reproduction.
#
#   ./ci.sh            build, run the test suite, then drive the acc CLI
#                      over the C corpus in corpus/
#
# Exit-code contract exercised here: acc must exit 0/1/2 only, and for the
# corpus translate --keep-going must succeed outright (0) while lint may
# report findings (1) but must never crash (2).

set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

ACC=_build/default/bin/acc.exe

echo "== corpus: acc translate --keep-going =="
for f in corpus/*.c; do
  if ! "$ACC" translate --keep-going "$f" > /dev/null; then
    echo "FAIL: acc translate --keep-going $f" >&2
    exit 1
  fi
  echo "ok: $f"
done

echo "== corpus: acc lint (findings allowed, crashes not) =="
for f in corpus/*.c; do
  set +e
  "$ACC" lint "$f" > /dev/null 2>&1
  code=$?
  set -e
  case "$code" in
    0|1) echo "ok: $f (exit $code)" ;;
    *)
      echo "FAIL: acc lint $f exited $code" >&2
      exit 1
      ;;
  esac
done

echo "== corpus: --jobs 4 output identical to --jobs 1 =="
for f in corpus/*.c; do
  seq_out=$("$ACC" translate --keep-going --diag-json "$f")
  par_out=$("$ACC" translate --keep-going --diag-json --jobs 4 "$f")
  if [ "$seq_out" != "$par_out" ]; then
    echo "FAIL: --jobs 4 diverged from --jobs 1 on $f" >&2
    exit 1
  fi
  echo "ok: $f"
done

echo "== corpus: acc analyze — determinism and discharge-rate floor =="
# PR 1's intraprocedural engine discharged 57% of the parser-emitted
# guards over this corpus.  The interprocedural engine must stay strictly
# above that floor, and its findings must not depend on --jobs.
BASELINE_PCT=57
total_guards=0
total_discharged=0
for f in corpus/*.c; do
  set +e
  out1=$("$ACC" analyze --json "$f"); c1=$?
  out4=$("$ACC" analyze --json --jobs 4 "$f"); c4=$?
  set -e
  case "$c1" in
    0|1) ;;
    *) echo "FAIL: acc analyze $f exited $c1" >&2; exit 1 ;;
  esac
  if [ "$c1" -ne "$c4" ] || [ "$out1" != "$out4" ]; then
    echo "FAIL: analyze --jobs 4 diverged from --jobs 1 on $f" >&2
    exit 1
  fi
  nums=$(printf '%s' "$out1" | sed 's/.*"summary":{"guards":\([0-9]*\),"discharged":\([0-9]*\).*/\1 \2/')
  g=${nums% *}
  d=${nums#* }
  total_guards=$(( total_guards + g ))
  total_discharged=$(( total_discharged + d ))
  echo "ok: $f ($d/$g discharged)"
done
rate=$(( 100 * total_discharged / total_guards ))
echo "corpus discharge rate: ${total_discharged}/${total_guards} (${rate}%)"
if [ "$rate" -le "$BASELINE_PCT" ]; then
  echo "FAIL: discharge rate ${rate}% not above the ${BASELINE_PCT}% intraprocedural baseline" >&2
  exit 1
fi

echo "== corpus: --no-interproc A/B (feature off = clean intraprocedural output) =="
# Toggling the summary engine off must restore the intraprocedural
# pipeline exactly — even beside a proof store warmed by interprocedural
# runs (summary digests are part of the store key, so the warm entries
# must not replay into a --no-interproc run).
AB_STORE=$(mktemp -d)
for f in corpus/*.c; do
  fresh=$("$ACC" translate --keep-going --diag-json --no-interproc "$f")
  "$ACC" translate --keep-going --store "$AB_STORE" "$f" > /dev/null
  warm=$("$ACC" translate --keep-going --diag-json --no-interproc --store "$AB_STORE" "$f")
  fresh_p=$(printf '%s' "$fresh" | sed 's/"store":{[^}]*}//')
  warm_p=$(printf '%s' "$warm" | sed 's/"store":{[^}]*}//')
  if [ "$fresh_p" != "$warm_p" ]; then
    echo "FAIL: --no-interproc output diverged beside a warm interprocedural store on $f" >&2
    exit 1
  fi
  echo "ok: $f"
done
rm -rf "$AB_STORE"

echo "== corpus: cached check agrees with uncached =="
for f in corpus/*.c; do
  "$ACC" check --keep-going "$f" > /dev/null
  "$ACC" check --keep-going --uncached "$f" > /dev/null
  echo "ok: $f"
done

echo "== corpus: proof store — warm run byte-identical to cold, and faster =="
STORE_DIR=$(mktemp -d)
trap 'rm -rf "$STORE_DIR"' EXIT

# Three interleaved cold/warm cycles, accumulating wall time: one cycle
# of 5-15ms processes is all timer noise, and interleaving keeps a slow
# scheduling epoch from landing entirely on one side of the ratio.
cold_ns=0
warm_ns=0
for cycle in 1 2 3; do
  find "$STORE_DIR" -name '*.acc' -delete
  t0=$(date +%s%N)
  for f in corpus/*.c; do
    "$ACC" translate --keep-going --diag-json --store "$STORE_DIR" "$f" > "$STORE_DIR/cold.$(basename "$f").json"
  done
  t1=$(date +%s%N)
  for f in corpus/*.c; do
    "$ACC" translate --keep-going --diag-json --store "$STORE_DIR" "$f" > "$STORE_DIR/warm.$(basename "$f").json"
  done
  t2=$(date +%s%N)
  cold_ns=$(( cold_ns + t1 - t0 ))
  warm_ns=$(( warm_ns + t2 - t1 ))
done

for f in corpus/*.c; do
  b=$(basename "$f")
  # The result payloads must be byte-identical; only the store counters
  # (hits vs misses) may differ between the runs.
  cold=$(sed 's/"store":{[^}]*}//' "$STORE_DIR/cold.$b.json")
  warm=$(sed 's/"store":{[^}]*}//' "$STORE_DIR/warm.$b.json")
  if [ "$cold" != "$warm" ]; then
    echo "FAIL: warm store run diverged from cold on $f" >&2
    exit 1
  fi
  if grep -q '"store":{"hits":0' "$STORE_DIR/warm.$b.json"; then
    echo "FAIL: warm store run replayed nothing on $f" >&2
    exit 1
  fi
  echo "ok: $f"
done

cold_ms=$(( cold_ns / 1000000 ))
warm_ms=$(( warm_ns / 1000000 ))
echo "cold ${cold_ms}ms, warm ${warm_ms}ms (3 cycles)"
# Speedup floor: the warm passes replay derivations instead of
# translating.  The corpus files are small, so ~6ms of process startup
# per invocation lands on both sides and compresses the CLI-level ratio
# toward 1 (typically 1.2-1.5x here) — the floor only asserts that warm
# is reliably cheaper.  The real performance gate is the in-process
# bench below, which asserts warm >= 2x cold without startup noise.
if [ $(( warm_ms * 21 )) -gt $(( cold_ms * 20 )) ]; then
  echo "FAIL: warm store runs (${warm_ms}ms) not >=1.05x faster than cold (${cold_ms}ms)" >&2
  exit 1
fi

"$ACC" cache stat --store "$STORE_DIR" > /dev/null

echo "== store crash-safety: kill -9 a writer mid-corpus, reopen, replay =="
# A writer process is SIGKILLed at several points while populating the
# store.  Whatever it managed to publish must be a consistent store:
# `cache doctor` must find no undetected-corrupt entries (atomic rename
# publishes whole entries or nothing; partials live only in tmp files,
# which doctor quarantines), and a warm replay over the survivors must be
# byte-identical to the cold reference.
CRASH_STORE=$(mktemp -d)
REF_DIR=$(mktemp -d)
for f in corpus/*.c; do
  "$ACC" translate --keep-going --diag-json "$f" > "$REF_DIR/$(basename "$f").json"
done
for delay in 0.05 0.15 0.30; do
  ( for f in corpus/*.c; do
      "$ACC" translate --keep-going --store "$CRASH_STORE" "$f" > /dev/null 2>&1
    done ) &
  wpid=$!
  sleep "$delay"
  kill -9 "$wpid" 2> /dev/null || true
  wait "$wpid" 2> /dev/null || true
done
doctor_out=$("$ACC" cache doctor --store "$CRASH_STORE" --grace 0)
echo "$doctor_out"
case "$doctor_out" in
  *" 0 corrupt"*) ;;
  *)
    echo "FAIL: cache doctor found undetected-corrupt entries after kill -9" >&2
    exit 1
    ;;
esac
for f in corpus/*.c; do
  warm=$("$ACC" translate --keep-going --diag-json --store "$CRASH_STORE" "$f" \
    | sed 's/"store":{[^}]*}//; s/"pool":{[^}]*}//')
  ref=$(sed 's/"store":{[^}]*}//; s/"pool":{[^}]*}//' "$REF_DIR/$(basename "$f").json")
  if [ "$warm" != "$ref" ]; then
    echo "FAIL: post-crash replay diverged from the cold reference on $f" >&2
    exit 1
  fi
  echo "ok: $f"
done
rm -rf "$CRASH_STORE"

echo "== store contention: two writers + concurrent gc, outputs identical =="
CONT_STORE=$(mktemp -d)
for f in corpus/*.c; do
  b=$(basename "$f")
  "$ACC" translate --keep-going --diag-json --store "$CONT_STORE" "$f" > "$CONT_STORE/a.$b.json" &
  pa=$!
  "$ACC" translate --keep-going --diag-json --store "$CONT_STORE" "$f" > "$CONT_STORE/b.$b.json" &
  pb=$!
  "$ACC" cache gc --store "$CONT_STORE" --max-entries 1024 > /dev/null
  wait "$pa" "$pb"
  a=$(sed 's/"store":{[^}]*}//; s/"pool":{[^}]*}//' "$CONT_STORE/a.$b.json")
  c=$(sed 's/"store":{[^}]*}//; s/"pool":{[^}]*}//' "$CONT_STORE/b.$b.json")
  ref=$(sed 's/"store":{[^}]*}//; s/"pool":{[^}]*}//' "$REF_DIR/$b.json")
  if [ "$a" != "$ref" ] || [ "$c" != "$ref" ]; then
    echo "FAIL: contended writers diverged from the reference on $f" >&2
    exit 1
  fi
  echo "ok: $f"
done
doctor_out=$("$ACC" cache doctor --store "$CONT_STORE" --grace 0)
case "$doctor_out" in
  *" 0 corrupt"*) ;;
  *)
    echo "FAIL: cache doctor found corrupt entries after contention: $doctor_out" >&2
    exit 1
    ;;
esac
rm -rf "$CONT_STORE" "$REF_DIR"

echo "== serve fault-injection soak: 300 requests at io_error:0.05,worker_crash:0.02 =="
# The same request stream through a clean session and an injected one.
# The injected session must answer every request (zero session deaths)
# and every response must match the clean run once the store/pool
# counters and diagnostics (fault injection adds warnings) are stripped.
SOAK_STORE=$(mktemp -d)
SOAK_REQS=$(mktemp)
SOAK_CLEAN=$(mktemp)
SOAK_OUT=$(mktemp)
i=0
while [ "$i" -lt 300 ]; do
  for f in corpus/*.c; do
    [ "$i" -lt 300 ] || break
    echo "translate $f" >> "$SOAK_REQS"
    i=$(( i + 1 ))
  done
done
"$ACC" serve --no-store < "$SOAK_REQS" > "$SOAK_CLEAN"
if ! "$ACC" serve --store "$SOAK_STORE" --inject 'io_error:0.05,worker_crash:0.02,seed:7' \
    < "$SOAK_REQS" > "$SOAK_OUT" 2> /dev/null; then
  echo "FAIL: injected serve session died" >&2
  exit 1
fi
answered=$(wc -l < "$SOAK_OUT")
if [ "$answered" -ne 300 ]; then
  echo "FAIL: injected serve answered $answered of 300 requests" >&2
  exit 1
fi
strip_volatile() {
  sed 's/"store":{[^}]*}//; s/"pool":{[^}]*}//; s/"diagnostics":\[[^]]*\]//' "$1"
}
if ! strip_volatile "$SOAK_CLEAN" > "$SOAK_CLEAN.n" \
   || ! strip_volatile "$SOAK_OUT" > "$SOAK_OUT.n" \
   || ! cmp -s "$SOAK_CLEAN.n" "$SOAK_OUT.n"; then
  echo "FAIL: injected serve output diverged from the clean session" >&2
  diff "$SOAK_CLEAN.n" "$SOAK_OUT.n" | head -5 >&2 || true
  exit 1
fi
echo "ok: 300/300 answered, zero divergence"
rm -rf "$SOAK_STORE" "$SOAK_REQS" "$SOAK_CLEAN" "$SOAK_CLEAN.n" "$SOAK_OUT" "$SOAK_OUT.n"

echo "== socket serve: 4 concurrent clients, clean + 5% io faults, SIGTERM drain =="
# Four clients pipeline translate/lint streams into one socket server,
# clean and with socket-I/O fault injection.  Every client's response
# stream must be byte-identical to the same requests through sequential
# stdin mode (no stripping: --no-store keeps responses history-free),
# the server must survive the faults (zero session deaths) and exit 0
# on SIGTERM.
SOCK_DIR=$(mktemp -d)
SOCK="$SOCK_DIR/acc.sock"
for c in 1 2 3 4; do
  : > "$SOCK_DIR/req.$c"
  for f in corpus/*.c; do
    echo "translate $f" >> "$SOCK_DIR/req.$c"
    echo "lint $f" >> "$SOCK_DIR/req.$c"
  done
  echo "frob$c x" >> "$SOCK_DIR/req.$c"
  "$ACC" serve --no-store < "$SOCK_DIR/req.$c" > "$SOCK_DIR/ref.$c"
done
for inject in "" "--inject io_error:0.05,seed:11"; do
  # shellcheck disable=SC2086
  "$ACC" serve --no-store --socket "$SOCK" --max-inflight 256 $inject &
  spid=$!
  while [ ! -S "$SOCK" ]; do sleep 0.05; done
  cpids=""
  for c in 1 2 3 4; do
    "$ACC" serve --connect "$SOCK" < "$SOCK_DIR/req.$c" > "$SOCK_DIR/out.$c" &
    cpids="$cpids $!"
  done
  # shellcheck disable=SC2086
  wait $cpids
  kill -TERM "$spid"
  if ! wait "$spid"; then
    echo "FAIL: socket server did not exit 0 on SIGTERM (inject='$inject')" >&2
    exit 1
  fi
  for c in 1 2 3 4; do
    if ! cmp -s "$SOCK_DIR/ref.$c" "$SOCK_DIR/out.$c"; then
      echo "FAIL: socket client $c diverged from stdin mode (inject='$inject')" >&2
      diff "$SOCK_DIR/ref.$c" "$SOCK_DIR/out.$c" | head -5 >&2 || true
      exit 1
    fi
  done
  echo "ok: 4 concurrent clients byte-identical to stdin mode (inject='${inject:-none}')"
done

echo "== socket serve: backpressure sheds structured errors =="
# A 200-request flood into --max-inflight 2 (the --connect client
# pipelines, so requests arrive faster than they execute): every line
# still gets exactly one response, the overflow as the structured
# overload error — never a hang, never a dropped request.
"$ACC" serve --no-store --socket "$SOCK" --max-inflight 2 &
spid=$!
while [ ! -S "$SOCK" ]; do sleep 0.05; done
seq 1 200 | sed 's/^/flood/; s/$/ x/' > "$SOCK_DIR/flood"
"$ACC" serve --connect "$SOCK" < "$SOCK_DIR/flood" > "$SOCK_DIR/flood.out"
lines=$(wc -l < "$SOCK_DIR/flood.out")
shed=$(grep -c '^{"ok":false,"error":"overloaded"}$' "$SOCK_DIR/flood.out" || true)
if [ "$lines" -ne 200 ]; then
  echo "FAIL: flood got $lines responses, want 200" >&2
  exit 1
fi
if [ "$shed" -eq 0 ]; then
  echo "FAIL: max-inflight 2 under a 200-request flood shed nothing" >&2
  exit 1
fi
kill -TERM "$spid"
if ! wait "$spid"; then
  echo "FAIL: shed-test server did not exit 0 on SIGTERM" >&2
  exit 1
fi
echo "ok: 200/200 answered, $shed shed as structured errors"
rm -rf "$SOCK_DIR"

echo "== perf bench smoke (divergence between modes fails the bench) =="
dune exec bench/main.exe -- perf > /dev/null

echo "== store bench (asserts warm >= 2x cold; writes BENCH_pr4.json) =="
dune exec bench/main.exe -- store > /dev/null

echo "== interproc bench (asserts discharge floor + monotonicity + kernel check; writes BENCH_pr6.json) =="
dune exec bench/main.exe -- interproc > /dev/null

echo "== faults bench (serve under injected faults; asserts zero failures and zero divergence; writes BENCH_pr7.json) =="
dune exec bench/main.exe -- faults > /dev/null

echo "== net bench (multi-client socket throughput; asserts scaling + zero divergence; writes BENCH_pr8.json) =="
dune exec bench/main.exe -- net > /dev/null

echo "== obs: tracing is byte-invisible and traces validate =="
OBS_DIR=$(mktemp -d)
# Traced vs untraced corpus translate: stdout and stderr byte-identical,
# and the emitted trace passes the validator (balanced B/E per thread,
# monotone timestamps, valid pids/tids).
# shellcheck disable=SC2086
"$ACC" translate --keep-going --no-store corpus/*.c \
  > "$OBS_DIR/t.plain" 2> "$OBS_DIR/t.plain.err"
# shellcheck disable=SC2086
"$ACC" translate --keep-going --no-store --trace "$OBS_DIR/t.json" corpus/*.c \
  > "$OBS_DIR/t.traced" 2> "$OBS_DIR/t.traced.err"
if ! cmp -s "$OBS_DIR/t.plain" "$OBS_DIR/t.traced"; then
  echo "FAIL: --trace changed translate stdout" >&2
  exit 1
fi
if ! cmp -s "$OBS_DIR/t.plain.err" "$OBS_DIR/t.traced.err"; then
  echo "FAIL: --trace changed translate stderr" >&2
  exit 1
fi
"$ACC" trace --validate "$OBS_DIR/t.json"
# The dedicated trace driver, in both formats.
# shellcheck disable=SC2086
"$ACC" trace -o "$OBS_DIR/d.json" corpus/*.c > /dev/null
"$ACC" trace --validate "$OBS_DIR/d.json"
# shellcheck disable=SC2086
"$ACC" trace -o "$OBS_DIR/d.jsonl" --trace-format jsonl corpus/*.c > /dev/null
echo "ok: traced translate byte-identical; traces validate"

echo "== obs: traced serve session is byte-identical =="
# A 72-request serve session (translate + lint over the corpus, twice):
# traced responses byte-identical to untraced, and the serve trace
# (request lifecycle spans) validates.
: > "$OBS_DIR/serve.req"
for pass in 1 2; do
  for f in corpus/*.c; do
    echo "translate $f" >> "$OBS_DIR/serve.req"
    echo "lint $f" >> "$OBS_DIR/serve.req"
  done
done
"$ACC" serve --no-store < "$OBS_DIR/serve.req" > "$OBS_DIR/serve.plain"
"$ACC" serve --no-store --trace "$OBS_DIR/serve.json" < "$OBS_DIR/serve.req" \
  > "$OBS_DIR/serve.traced"
if ! cmp -s "$OBS_DIR/serve.plain" "$OBS_DIR/serve.traced"; then
  echo "FAIL: --trace changed serve responses" >&2
  exit 1
fi
"$ACC" trace --validate "$OBS_DIR/serve.json"
nreq=$(wc -l < "$OBS_DIR/serve.req")
echo "ok: $nreq-request traced serve session byte-identical; trace validates"
rm -rf "$OBS_DIR"

echo "== obs bench (asserts off-path <= 1%, enabled <= 5%, zero divergence; writes BENCH_pr9.json) =="
dune exec bench/main.exe -- obs > /dev/null

echo "== telemetry soak: 4 clients + /metrics scrape + SIGUSR1 flight dump =="
# Four clients soak a fault-injected socket server with the whole
# telemetry plane armed (scrape port, flight recorder, slow log).
# Mid-soak the scrape endpoints are curled and the flight recorder is
# dumped with SIGUSR1; the dump must pass `acc trace --validate`, the
# scrape must be OpenMetrics text ending in `# EOF`, and every client's
# response stream must stay byte-identical to the untelemetered
# reference — telemetry must never leak into request output.
TEL_DIR=$(mktemp -d)
TSOCK="$TEL_DIR/acc.sock"
MPORT=$((22000 + $$ % 10000))
for c in 1 2 3 4; do
  : > "$TEL_DIR/req.$c"
  for pass in 1 2 3; do
    for f in corpus/*.c; do
      echo "translate $f" >> "$TEL_DIR/req.$c"
      echo "lint $f" >> "$TEL_DIR/req.$c"
    done
  done
  "$ACC" serve --no-store < "$TEL_DIR/req.$c" > "$TEL_DIR/ref.$c"
done
# 4 clients x 3 corpus passes pipeline ~384 requests; --max-inflight must
# exceed that or the backpressure shedder (correctly) answers "overloaded"
# and the byte-compare below sees the shed, not a telemetry leak.
"$ACC" serve --no-store --socket "$TSOCK" --max-inflight 1024 \
  --inject io_error:0.05,seed:11 \
  --metrics-port "$MPORT" \
  --flight-recorder 8192 --flight-dump "$TEL_DIR/flight.json" \
  --slow-ms 0 --slow-log "$TEL_DIR/slow.jsonl" &
spid=$!
while [ ! -S "$TSOCK" ]; do sleep 0.05; done
cpids=""
for c in 1 2 3 4; do
  "$ACC" serve --connect "$TSOCK" < "$TEL_DIR/req.$c" > "$TEL_DIR/out.$c" &
  cpids="$cpids $!"
done
sleep 0.3
curl -fsS "http://127.0.0.1:$MPORT/healthz" > "$TEL_DIR/healthz" &&
  grep -q "ok" "$TEL_DIR/healthz"
curl -fsS "http://127.0.0.1:$MPORT/readyz" > /dev/null
curl -fsS "http://127.0.0.1:$MPORT/metrics" > "$TEL_DIR/metrics.midsoak"
kill -USR1 "$spid"
tries=0
until [ -s "$TEL_DIR/flight.json" ] || [ $tries -ge 100 ]; do
  sleep 0.05; tries=$((tries + 1))
done
"$ACC" trace --validate "$TEL_DIR/flight.json"
# shellcheck disable=SC2086
wait $cpids
curl -fsS "http://127.0.0.1:$MPORT/metrics" > "$TEL_DIR/metrics.final"
kill -TERM "$spid"
if ! wait "$spid"; then
  echo "FAIL: telemetered server did not exit 0 on SIGTERM" >&2
  exit 1
fi
for out in metrics.midsoak metrics.final; do
  if ! tail -c 6 "$TEL_DIR/$out" | grep -q "# EOF"; then
    echo "FAIL: $out is not terminated OpenMetrics text" >&2
    exit 1
  fi
done
for series in acc_serve_requests_total acc_serve_request_latency_s_bucket \
              acc_trace_dropped_events_total acc_kernel_rule_applications_total; do
  if ! grep -q "^$series" "$TEL_DIR/metrics.final"; then
    echo "FAIL: /metrics is missing the $series series" >&2
    exit 1
  fi
done
for c in 1 2 3 4; do
  if ! cmp -s "$TEL_DIR/ref.$c" "$TEL_DIR/out.$c"; then
    echo "FAIL: telemetered client $c diverged from untelemetered reference" >&2
    diff "$TEL_DIR/ref.$c" "$TEL_DIR/out.$c" | head -5 >&2 || true
    exit 1
  fi
done
if [ ! -s "$TEL_DIR/slow.jsonl" ]; then
  echo "FAIL: --slow-ms 0 produced no slow-log records" >&2
  exit 1
fi
python3 - "$TEL_DIR/slow.jsonl" <<'PYEOF'
import json, sys
n = 0
for line in open(sys.argv[1]):
    rec = json.loads(line)
    for k in ("rid", "verb", "latency_ms"):
        assert k in rec, f"slow-log record missing {k}: {rec}"
    n += 1
print(f"slow log: {n} records, all parse")
PYEOF
nreq=$(wc -l < "$TEL_DIR/req.1")
echo "ok: 4x$nreq-request telemetered soak byte-identical; flight dump and scrape validate"
rm -rf "$TEL_DIR"

echo "== telemetry bench (A/A-validated floor; asserts disabled <= 1%, armed <= 5%, zero divergence; writes BENCH_pr10.json) =="
dune exec bench/main.exe -- telemetry > /dev/null

echo "CI OK"
