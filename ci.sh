#!/bin/sh
# CI for the AutoCorres reproduction.
#
#   ./ci.sh            build, run the test suite, then drive the acc CLI
#                      over the C corpus in corpus/
#
# Exit-code contract exercised here: acc must exit 0/1/2 only, and for the
# corpus translate --keep-going must succeed outright (0) while lint may
# report findings (1) but must never crash (2).

set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

ACC=_build/default/bin/acc.exe

echo "== corpus: acc translate --keep-going =="
for f in corpus/*.c; do
  if ! "$ACC" translate --keep-going "$f" > /dev/null; then
    echo "FAIL: acc translate --keep-going $f" >&2
    exit 1
  fi
  echo "ok: $f"
done

echo "== corpus: acc lint (findings allowed, crashes not) =="
for f in corpus/*.c; do
  set +e
  "$ACC" lint "$f" > /dev/null 2>&1
  code=$?
  set -e
  case "$code" in
    0|1) echo "ok: $f (exit $code)" ;;
    *)
      echo "FAIL: acc lint $f exited $code" >&2
      exit 1
      ;;
  esac
done

echo "== corpus: --jobs 4 output identical to --jobs 1 =="
for f in corpus/*.c; do
  seq_out=$("$ACC" translate --keep-going --diag-json "$f")
  par_out=$("$ACC" translate --keep-going --diag-json --jobs 4 "$f")
  if [ "$seq_out" != "$par_out" ]; then
    echo "FAIL: --jobs 4 diverged from --jobs 1 on $f" >&2
    exit 1
  fi
  echo "ok: $f"
done

echo "== corpus: cached check agrees with uncached =="
for f in corpus/*.c; do
  "$ACC" check --keep-going "$f" > /dev/null
  "$ACC" check --keep-going --uncached "$f" > /dev/null
  echo "ok: $f"
done

echo "== perf bench smoke (divergence between modes fails the bench) =="
dune exec bench/main.exe -- perf > /dev/null

echo "CI OK"
