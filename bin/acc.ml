(* acc — the AutoCorres command line.

     acc translate file.c            abstract a C file, print the output
     acc check file.c                re-check derivations + differential test
     acc stats file.c                Table 5-style pipeline statistics
     acc lint file.c                 report refutable UB guards (likely bugs)
     acc analyze file.c              whole-program guard report (discharged /
                                     refuted / residual), interprocedural
     acc serve                       long-lived batch mode (requests on stdin)
     acc cache stat|clear|gc         manage the persistent proof store

   Options select the paper's per-function abstraction switches, fault
   isolation (--keep-going), resource budgets (--timeout, --solver-branches,
   --analysis-steps, --analysis-rounds, --rewrite-fuel), and the persistent
   proof store (--store DIR / $ACC_STORE / --no-store).

   Exit-code contract (kept by every subcommand, on every input):
     0  success (for lint: no findings)
     1  findings: lint warnings, a failed check, or functions that degraded
        below L2 during translation; also an unusable proof store (it is a
        structured [Diag.Error], not an internal error)
     2  usage or input errors (unreadable file, parse or type error) and
        internal errors — always a one-line diagnostic, never a stack trace. *)

open Cmdliner
module Driver = Autocorres.Driver
module Diag = Autocorres.Diag
module Pool = Autocorres.Pool
module Supervisor = Autocorres.Supervisor
module Faults = Autocorres.Faults
module Store = Ac_store.Store
module Obs = Ac_obs.Obs
module Metrics = Ac_obs.Metrics
module Effort = Ac_obs.Effort

(* Monotonic wall clock for serve's watchdog: must not jump when the
   system clock is stepped.  Shared with [Supervisor.timed] and the
   store-lock backoff — one clock for every deadline in the service
   path. *)
let mono_s = Autocorres.Profile.mono_s

(* Usage errors: one-line diagnostic on stderr, exit 2. *)
let usage_error fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

(* Flight recorder (serve --flight-recorder): when armed, this holds the
   dump action — harvest the span rings, repair truncation, write the
   trace file.  Consulted from the SIGUSR1 check, the serve watchdog on
   a deadline overrun, and the fatal-exit paths in [protect], so a
   misbehaving session leaves its last N events on disk for post-mortem
   even when nobody asked for a full --trace. *)
let flight_dump : (unit -> unit) option ref = ref None
let maybe_dump_flight () = match !flight_dump with Some f -> f () | None -> ()

(* The last line of defence for the exit-code contract: anything a command
   body lets escape is an internal error — one line on stderr, exit 2,
   never cmdliner's uncaught-exception dump. *)
let protect (f : unit -> unit) () =
  match f () with
  | () -> ()
  | exception Diag.Error d ->
    maybe_dump_flight ();
    prerr_endline (Diag.to_string d);
    exit 1
  | exception e ->
    maybe_dump_flight ();
    Printf.eprintf "acc: internal error: %s\n%!" (Diag.message_of_exn e);
    exit 2

let read_file path =
  if not (Sys.file_exists path) then usage_error "acc: %s: no such file" path;
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> s
  | exception Sys_error m -> usage_error "acc: %s" m

let options_of ?(no_discharge = false) ?(no_interproc = false) ?(keep_going = false)
    ?(budgets = Driver.default_budgets) ?(jobs = 1) ~no_heap ~no_word ~keep_low () =
  {
    Driver.defaults =
      {
        Driver.word_abs = not no_word;
        heap_abs = not no_heap;
        discharge_guards = not no_discharge;
      };
    overrides =
      List.map
        (fun f ->
          ( f,
            {
              Driver.word_abs = false;
              heap_abs = false;
              discharge_guards = not no_discharge;
            } ))
        keep_low;
    strategy = Autocorres.Wa.default_strategy;
    polish = true;
    keep_going;
    budgets;
    jobs = max 1 jobs;
    l2_memo = true;
    interproc = not no_interproc;
    summary_profile = false;
  }

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"C source file")

(* translate accepts several files (one run each, same options/store) so
   a whole corpus can be traced into one file: `acc translate --trace
   t.json corpus/*.c`.  With a single file the behaviour is unchanged. *)
let files_arg =
  Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc:"C source file(s)")

(* ------------------------------------------------------------------ *)
(* The persistent proof store (--store DIR / $ACC_STORE / --no-store). *)

let store_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Persistent proof store: reuse certified per-function translation \
           results across runs.  Entries are replayed through the kernel on \
           every load, so the store is never trusted.  Defaults to \
           \\$ACC_STORE when set.")

let no_store_arg =
  Arg.(
    value & flag
    & info [ "no-store" ]
        ~doc:"Ignore --store and \\$ACC_STORE; translate from scratch")

(* Resolve the store handle.  An unusable store directory is a structured
   diagnostic (exit 1 via [protect]), not an internal error: the store is
   part of the user's configuration, and the failure mode must match the
   exit contract. *)
let store_of ~store_dir ~no_store : Store.t option =
  let dir =
    if no_store then None
    else
      match store_dir with Some d -> Some d | None -> Sys.getenv_opt "ACC_STORE"
  in
  match dir with
  | None -> None
  | Some d -> (
    match Store.open_ ~dir:d () with
    | Ok st -> Some st
    | Error m -> raise (Diag.Error (Diag.make ~severity:Diag.Error Diag.Store m)))

(* ------------------------------------------------------------------ *)
(* Tracing (--trace FILE on translate/check/analyze/serve, `acc trace`).

   Tracing is observation only: enabling it changes no output byte —
   the CLI/serve tests and ci.sh byte-compare traced vs untraced runs.
   The trace file is written from [at_exit] because subcommands exit
   directly (e.g. translate exits 1 on degraded functions) and the trace
   must cover those paths too. *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a structured trace of the run (per-function pipeline phases, \
           pool/supervisor events, store I/O, serve request lifecycle) and \
           write it to $(docv) on exit.  Chrome trace_event JSON by default \
           (open in about:tracing or Perfetto); see --trace-format.  Output \
           bytes are identical with or without tracing.")

let trace_format_arg =
  Arg.(
    value
    & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:"Trace file format: $(b,chrome) (trace_event JSON) or $(b,jsonl) \
              (one event object per line, for streaming consumers)")

let write_trace ~format path =
  let evs = Obs.harvest () in
  (* Ring mode overwrites the oldest events, which can orphan B/E pairs;
     repair the stream so every dump passes `acc trace --validate`.
     Identity when the buffers are unbounded, so plain --trace output is
     byte-for-byte what it always was. *)
  let evs = if Obs.ring () <> None then Obs.repair evs else evs in
  let s = match format with `Chrome -> Obs.to_chrome evs | `Jsonl -> Obs.to_jsonl evs in
  match
    let oc = open_out path in
    output_string oc s;
    close_out oc
  with
  | () -> ()
  | exception Sys_error m -> Printf.eprintf "acc: cannot write trace: %s\n%!" m

let setup_trace trace format =
  match trace with
  | None -> ()
  | Some path ->
    Obs.set_enabled true;
    at_exit (fun () -> write_trace ~format path)

let no_heap =
  Arg.(value & flag & info [ "no-heap-abs" ] ~doc:"Disable heap abstraction (Sec 4)")

let no_word =
  Arg.(value & flag & info [ "no-word-abs" ] ~doc:"Disable word abstraction (Sec 3)")

let no_discharge =
  Arg.(
    value & flag
    & info [ "no-discharge" ]
        ~doc:"Disable the abstract-interpretation guard-discharge pass")

let no_interproc =
  Arg.(
    value & flag
    & info [ "no-interproc" ]
        ~doc:
          "Disable interprocedural summaries: guard discharge and analysis \
           become purely intraprocedural (the pre-summary behaviour)")

let keep_low =
  Arg.(
    value & opt_all string []
    & info [ "keep-low-level" ] ~docv:"FUNC"
        ~doc:"Keep $(docv) in the byte-level model (callable via exec_concrete)")

let keep_going =
  Arg.(
    value & flag
    & info [ "keep-going"; "k" ]
        ~doc:
          "Fault isolation: degrade failing functions to their last certified \
           level (WA, HL, L2, L1, Simpl-only) and keep translating the rest of \
           the unit.  Exit 1 when any function fell below L2.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Translate functions on $(docv) worker domains.  Output is \
           byte-identical to sequential mode at any value: results keep \
           input order and the first failure (in input order) wins.")

let diag_json =
  Arg.(
    value & flag
    & info [ "diag-json" ]
        ~doc:
          "Machine output: print a JSON object with per-function levels and \
           all diagnostics to stdout instead of the translated program")

(* Budget flags: one term producing a [Driver.budgets]. *)
let budgets_term =
  let solver_branches =
    Arg.(
      value
      & opt int Driver.default_budgets.Driver.solver_branches
      & info [ "solver-branches" ] ~docv:"N"
          ~doc:"Prover budget: tableau branches per goal before giving up")
  in
  let analysis_rounds =
    Arg.(
      value
      & opt int Driver.default_budgets.Driver.analysis_rounds
      & info [ "analysis-rounds" ] ~docv:"N"
          ~doc:"Analysis budget: widen/join rounds per loop")
  in
  let analysis_steps =
    Arg.(
      value
      & opt int Driver.default_budgets.Driver.analysis_steps
      & info [ "analysis-steps" ] ~docv:"N"
          ~doc:"Analysis budget: fixpoint iterations per analysed function")
  in
  let rewrite_fuel =
    Arg.(
      value
      & opt int Driver.default_budgets.Driver.rewrite_fuel
      & info [ "rewrite-fuel" ] ~docv:"N"
          ~doc:"Rewrite budget: head rewrites per kernel normalize call")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Wall-clock deadline for the prover (per goal) and the guard \
             analysis (per function); exhaustion keeps the guard instead of \
             hanging")
  in
  let summary_rounds =
    Arg.(
      value
      & opt int Driver.default_budgets.Driver.summary_rounds
      & info [ "summary-rounds" ] ~docv:"N"
          ~doc:
            "Interprocedural budget: whole-program context-refinement rounds \
             of the summary engine")
  in
  let summary_contexts =
    Arg.(
      value
      & opt int Driver.default_budgets.Driver.summary_contexts
      & info [ "summary-contexts" ] ~docv:"N"
          ~doc:"Interprocedural budget: refined summary contexts per callee")
  in
  let mk solver_branches analysis_rounds analysis_steps rewrite_fuel summary_rounds
      summary_contexts timeout =
    {
      Driver.solver_branches;
      solver_deadline_s = timeout;
      cc_merges = Driver.default_budgets.Driver.cc_merges;
      analysis_rounds;
      analysis_steps;
      analysis_deadline_s = timeout;
      rewrite_fuel;
      summary_rounds;
      summary_contexts;
    }
  in
  Term.(
    const mk $ solver_branches $ analysis_rounds $ analysis_steps $ rewrite_fuel
    $ summary_rounds $ summary_contexts $ timeout)

let stage =
  Arg.(
    value
    & opt (enum [ ("simpl", `Simpl); ("l1", `L1); ("l2", `L2); ("final", `Final) ]) `Final
    & info [ "stage" ] ~doc:"Which representation to print: simpl, l1, l2 or final")

let func_filter =
  Arg.(
    value & opt (some string) None
    & info [ "func" ] ~docv:"NAME" ~doc:"Print only this function")

let with_funcs res func_filter f =
  List.iter
    (fun fr ->
      match func_filter with
      | Some name when name <> fr.Driver.fr_name -> ()
      | _ -> f fr)
    res.Driver.funcs

(* Front-end errors carry positions; render them the way compilers do, on
   stderr, and exit 2 (a problem with the input, not a finding). *)
let run_frontend ?store ?pool ?fresh_tables ~file ~options source =
  try Driver.run ~options ?store ?pool ?fresh_tables source with
  | Ac_cfront.Lexer.Lex_error (m, pos) ->
    usage_error "%s:%d:%d: lexical error: %s" file pos.Ac_cfront.Ast.line pos.Ac_cfront.Ast.col m
  | Ac_cfront.Parser.Parse_error (m, pos) ->
    usage_error "%s:%d:%d: parse error: %s" file pos.Ac_cfront.Ast.line pos.Ac_cfront.Ast.col m
  | Ac_cfront.Typecheck.Type_error (m, pos) ->
    usage_error "%s:%d:%d: type error: %s" file pos.Ac_cfront.Ast.line pos.Ac_cfront.Ast.col m

(* The machine-readable translation report for --diag-json. *)
let result_json ~file (res : Driver.result) : string =
  let fn name level chained =
    Printf.sprintf "{\"name\":\"%s\",\"level\":\"%s\",\"chained\":%b}"
      (Diag.json_escape name) (Driver.level_name level) chained
  in
  let funcs =
    List.map
      (fun fr ->
        fn fr.Driver.fr_name (Driver.level_of fr) (fr.Driver.fr_chain <> None))
      res.Driver.funcs
    @ List.map
        (fun d -> fn d.Driver.dg_name (Driver.degraded_level d) false)
        res.Driver.degraded
  in
  Printf.sprintf
    "{\"file\":\"%s\",\"functions\":[%s],\"budget_exhaustions\":%d,\"store\":{\"hits\":%d,\"misses\":%d},\"pool\":{\"retries\":%d,\"quarantined\":%d,\"restarts\":%d},\"diagnostics\":%s}"
    (Diag.json_escape file) (String.concat "," funcs) res.Driver.budget_hits
    res.Driver.store_hits res.Driver.store_misses res.Driver.retries
    res.Driver.quarantined res.Driver.restarts
    (Diag.list_to_json res.Driver.diags)

let translate files no_heap no_word no_discharge no_interproc keep_low stage func_filter
    keep_going diag_json budgets jobs store_dir no_store trace trace_format =
  setup_trace trace trace_format;
  let options =
    options_of ~no_discharge ~no_interproc ~keep_going ~budgets ~jobs ~no_heap ~no_word
      ~keep_low ()
  in
  let store = store_of ~store_dir ~no_store in
  let any_degraded = ref false in
  List.iter
    (fun file ->
      let source = read_file file in
      let res = run_frontend ?store ~file ~options source in
      if diag_json then print_endline (result_json ~file res)
      else begin
        with_funcs res func_filter (fun fr ->
            (match stage with
            | `Simpl -> print_endline (Ac_simpl.Print.func_to_string fr.Driver.fr_simpl)
            | `L1 -> print_endline (Ac_monad.Mprint.func_to_string fr.Driver.fr_l1)
            | `L2 -> print_endline (Ac_monad.Mprint.func_to_string fr.Driver.fr_l2)
            | `Final -> print_endline (Ac_monad.Mprint.func_to_string fr.Driver.fr_final));
            List.iter
              (fun (phase, why) -> Printf.printf "  (%s skipped: %s)\n" phase why)
              fr.Driver.fr_skipped);
        List.iter
          (fun (d : Driver.degraded) ->
            match func_filter with
            | Some name when name <> d.Driver.dg_name -> ()
            | _ ->
              Printf.printf "/* %s: degraded to %s */\n" d.Driver.dg_name
                (Driver.level_name (Driver.degraded_level d)))
          res.Driver.degraded;
        (* Diagnostics go to stderr, compiler-style. *)
        List.iter (fun d -> prerr_endline (Diag.to_string ~file d)) res.Driver.diags
      end;
      if res.Driver.degraded <> [] then any_degraded := true)
    files;
  if !any_degraded then exit 1

let check file no_heap no_word no_discharge no_interproc keep_low keep_going budgets
    cases jobs uncached store_dir no_store trace trace_format =
  setup_trace trace trace_format;
  let source = read_file file in
  let options =
    options_of ~no_discharge ~no_interproc ~keep_going ~budgets ~jobs ~no_heap ~no_word
      ~keep_low ()
  in
  let store = store_of ~store_dir ~no_store in
  let res = run_frontend ?store ~file ~options source in
  (* In an audit run, a store entry that had to be rejected (unreadable,
     corrupt, stale) is itself a finding: report it structured and exit 1,
     even though the translation degraded gracefully past it. *)
  let store_problems =
    List.filter (fun (d : Diag.t) -> d.Diag.d_phase = Diag.Store) res.Driver.diags
  in
  List.iter (fun d -> prerr_endline (Diag.to_string ~file d)) store_problems;
  (match Driver.check_all ~cached:(not uncached) res with
  | Ok () -> Printf.printf "kernel: all refinement derivations re-validated\n"
  | Error e ->
    Printf.printf "kernel: FAILED (%s)\n" e;
    exit 1);
  let report = Autocorres.Refine_test.check_program ~cases res in
  Printf.printf
    "differential test: %d cases, %d agree, %d abstraction-failed (no claim), %d skipped\n"
    report.Autocorres.Refine_test.cases report.Autocorres.Refine_test.agreed
    report.Autocorres.Refine_test.abstract_failed report.Autocorres.Refine_test.skipped;
  (match report.Autocorres.Refine_test.violations with
  | [] -> ()
  | (f, d) :: _ ->
    Printf.printf "VIOLATION in %s: %s\n" f d;
    exit 1);
  if res.Driver.degraded <> [] then begin
    List.iter
      (fun (d : Driver.degraded) ->
        Printf.printf "degraded: %s at %s\n" d.Driver.dg_name
          (Driver.level_name (Driver.degraded_level d)))
      res.Driver.degraded;
    exit 1
  end;
  if store_problems <> [] then exit 1

let stats file profile profile_json jobs store_dir no_store =
  let source = read_file file in
  (* Run the front end once under [run_frontend] so lexical/parse/type
     errors render compiler-style and exit 2 before measuring. *)
  let options =
    { Driver.default_options with
      Driver.keep_going = true;
      jobs = max 1 jobs;
      (* The summary columns cost two extra analysis passes per function,
         so they are only measured when the profile is requested. *)
      summary_profile = profile || profile_json }
  in
  let store = store_of ~store_dir ~no_store in
  let (_ : Driver.result) = run_frontend ~file ~options source in
  (* Proof-effort accounting for the profile: the kernel hook is
     installed from here — outside the kernel — and reset after the
     probe run above so the profile counts exactly one measured
     translation. *)
  if profile || profile_json then begin
    Ac_kernel.Thm.set_obs_hook (Some Effort.on_rule);
    Effort.set_enabled true;
    Effort.reset ()
  end;
  let row, res =
    Ac_stats.measure ~options ?store ~name:(Filename.basename file) source
  in
  (* Include derivation checking in the profile, as in a full audit run. *)
  if profile || profile_json then ignore (Driver.check_all res);
  if profile_json then print_endline (Autocorres.Profile.to_json ())
  else begin
    print_string
      (Ac_stats.render_table ~header:Ac_stats.table5_header
         [ Ac_stats.row_to_strings row ]);
    if profile then begin
      print_newline ();
      print_string
        (Ac_stats.render_table ~header:Ac_stats.profile_header
           (Ac_stats.profile_rows (Autocorres.Profile.snapshot ())));
      if res.Driver.iprof <> [] then begin
        print_newline ();
        print_string
          (Ac_stats.render_table ~header:Ac_stats.summary_header
             (Ac_stats.summary_rows res))
      end;
      Printf.printf "\nstore: %d hits, %d misses\n" res.Driver.store_hits
        res.Driver.store_misses;
      Printf.printf "pool: %d retries, %d quarantined, %d restarts\n"
        res.Driver.retries res.Driver.quarantined res.Driver.restarts;
      (* Where the kernel's work went: rule applications, chain shapes,
         and which pass paid for each discharged guard. *)
      let total = Effort.total_applications () in
      if total > 0 then begin
        let chains = Metrics.counter_value (Metrics.counter "kernel.chains") in
        let hd = Metrics.histogram "kernel.chain_depth" in
        let hs = Metrics.histogram "kernel.chain_size" in
        Printf.printf
          "kernel: %d rule applications; %d chains (depth p50 %.0f p95 %.0f, \
           size p50 %.0f p95 %.0f)\n"
          total chains (Metrics.quantile hd 0.50) (Metrics.quantile hd 0.95)
          (Metrics.quantile hs 0.50) (Metrics.quantile hs 0.95);
        let top =
          List.filteri (fun i _ -> i < 5) (Effort.rule_counts ())
          |> List.map (fun (r, n) -> Printf.sprintf "%s %d" r n)
        in
        Printf.printf "top rules: %s\n" (String.concat ", " top);
        Printf.printf "discharge provenance: %d intra, %d interproc, %d scrub_dead\n"
          (Metrics.counter_value (Metrics.counter "kernel.discharged_intra"))
          (Metrics.counter_value (Metrics.counter "kernel.discharged_interproc"))
          (Metrics.counter_value (Metrics.counter "kernel.discharged_scrub_dead"))
      end
    end
  end

(* A lint/analyze finding rendered as a structured diagnostic, so every
   machine output (serve responses, `acc analyze --json`) uses the exact
   JSON shape `--diag-json` established. *)
let diag_of_finding ~severity (f : Ac_analysis.finding) : Diag.t =
  let msg =
    match f.Ac_analysis.lf_kind with
    | Some k ->
      Printf.sprintf "%s [%s]" f.Ac_analysis.lf_msg (Ac_simpl.Ir.guard_kind_name k)
    | None -> f.Ac_analysis.lf_msg
  in
  Diag.make ~func:f.Ac_analysis.lf_func ?pos:f.Ac_analysis.lf_pos ~severity
    Diag.Guard_discharge msg

let print_finding ~file ~severity (f : Ac_analysis.finding) =
  let where =
    match f.Ac_analysis.lf_pos with
    | Some p -> Printf.sprintf "%s:%d:%d" file p.Ac_cfront.Ast.line p.Ac_cfront.Ast.col
    | None -> file
  in
  let kind =
    match f.Ac_analysis.lf_kind with
    | Some k -> Printf.sprintf " [%s]" (Ac_simpl.Ir.guard_kind_name k)
    | None -> ""
  in
  Printf.printf "%s: %s: %s%s (in %s)\n" where (Diag.severity_name severity)
    f.Ac_analysis.lf_msg kind f.Ac_analysis.lf_func

(* `acc lint`: replay the guard analysis and report refuted guards (these
   executions would dereference NULL, divide by zero, ... — likely UB) plus
   possibly-uninitialised reads, with positions from the front end.  Exit 1
   when there are findings, 0 otherwise. *)
let lint file no_heap no_word no_interproc keep_low jobs store_dir no_store =
  let source = read_file file in
  let options =
    options_of ~no_interproc ~keep_going:true ~jobs ~no_heap ~no_word ~keep_low ()
  in
  let store = store_of ~store_dir ~no_store in
  let res = run_frontend ?store ~file ~options source in
  let lenv = res.Driver.ctx.Ac_kernel.Rules.lenv in
  let guard_findings =
    List.concat_map
      (fun fr ->
        Ac_analysis.lint_func lenv ~simpl:fr.Driver.fr_simpl ~sums:res.Driver.sums
          fr.Driver.fr_l2)
      res.Driver.funcs
  in
  (* Definite initialisation runs on the typed front-end IR, where
     uninitialised locals are still visible (downstream they are
     default-initialised). *)
  let uninit_findings =
    let tprog = Ac_cfront.Typecheck.parse_and_check source in
    List.concat_map Ac_analysis.uninit_findings tprog.Ac_cfront.Tir.tp_funcs
  in
  (* Deterministic output order at any --jobs value, and no duplicates when
     a degradation retry re-analysed a function: sort by position, then
     guard kind, then function. *)
  let findings = Ac_analysis.sort_findings (guard_findings @ uninit_findings) in
  List.iter (print_finding ~file ~severity:Diag.Warning) findings;
  if findings <> [] then exit 1;
  Printf.printf "%s: no findings\n" file

(* `acc analyze`: the whole-program static-analysis report.  Every guard
   the C parser emitted is classified — discharged (proven impossible,
   removed under a kernel-checked certificate), refuted (the analysis
   found executions that reach the fault: likely UB, a warning), or
   residual (neither: the proof obligation the verification engineer
   keeps).  Exit 0 when nothing was refuted, 1 on refuted findings,
   2 on input/internal errors. *)
let analyze file no_heap no_word no_interproc keep_low budgets jobs json store_dir
    no_store trace trace_format =
  setup_trace trace trace_format;
  let source = read_file file in
  let options =
    options_of ~no_interproc ~keep_going:true ~budgets ~jobs ~no_heap ~no_word ~keep_low
      ()
  in
  let store = store_of ~store_dir ~no_store in
  let res = run_frontend ?store ~file ~options source in
  let lenv = res.Driver.ctx.Ac_kernel.Rules.lenv in
  let sums = res.Driver.sums in
  let rows =
    List.map
      (fun fr ->
        let src = Ac_stats.ir_guard_count fr.Driver.fr_simpl.Ac_simpl.Ir.body in
        let kept = Ac_analysis.guard_count fr.Driver.fr_l2.Ac_monad.M.body in
        let sv =
          Ac_analysis.survey_func lenv ~simpl:fr.Driver.fr_simpl ~sums fr.Driver.fr_l2
        in
        (fr.Driver.fr_name, src, max 0 (src - kept), sv))
      res.Driver.funcs
  in
  (* Severity ranking: refuted first (likely UB), then residual; each group
     in deterministic position order. *)
  let refuted =
    Ac_analysis.sort_findings
      (List.concat_map (fun (_, _, _, sv) -> sv.Ac_analysis.sv_refuted) rows)
  in
  let residual =
    Ac_analysis.sort_findings
      (List.concat_map (fun (_, _, _, sv) -> sv.Ac_analysis.sv_residual) rows)
  in
  let guards = List.fold_left (fun acc (_, src, _, _) -> acc + src) 0 rows in
  let discharged = List.fold_left (fun acc (_, _, d, _) -> acc + d) 0 rows in
  if json then begin
    let fn (name, src, d, sv) =
      Printf.sprintf
        "{\"name\":\"%s\",\"guards\":%d,\"discharged\":%d,\"refuted\":%d,\"residual\":%d}"
        (Diag.json_escape name) src d
        (List.length sv.Ac_analysis.sv_refuted)
        (List.length sv.Ac_analysis.sv_residual)
    in
    let findings =
      List.map (diag_of_finding ~severity:Diag.Warning) refuted
      @ List.map (diag_of_finding ~severity:Diag.Note) residual
    in
    print_endline
      (Printf.sprintf
         "{\"file\":\"%s\",\"summary\":{\"guards\":%d,\"discharged\":%d,\"refuted\":%d,\"residual\":%d},\"functions\":[%s],\"findings\":%s,\"degraded\":%d,\"budget_exhaustions\":%d}"
         (Diag.json_escape file) guards discharged (List.length refuted)
         (List.length residual)
         (String.concat "," (List.map fn rows))
         (Diag.list_to_json findings)
         (List.length res.Driver.degraded)
         res.Driver.budget_hits)
  end
  else begin
    Printf.printf "%s: %d guards: %d discharged (%.0f%%), %d refuted, %d residual\n"
      file guards discharged
      (if guards = 0 then 100.0
       else 100.0 *. float_of_int discharged /. float_of_int guards)
      (List.length refuted) (List.length residual);
    List.iter (print_finding ~file ~severity:Diag.Warning) refuted;
    List.iter (print_finding ~file ~severity:Diag.Note) residual;
    List.iter
      (fun (d : Driver.degraded) ->
        Printf.printf "%s: note: %s degraded to %s (not analysed)\n" file
          d.Driver.dg_name
          (Driver.level_name (Driver.degraded_level d)))
      res.Driver.degraded
  end;
  if refuted <> [] then exit 1

(* ------------------------------------------------------------------ *)
(* `acc serve`: a long-lived batch mode.  Requests are newline-delimited
   on stdin — `translate FILE`, `check FILE`, `lint FILE` or `status` —
   and each produces exactly one JSON response line on stdout, in request
   order.  The proof store, the worker pool and the hash-consing tables
   stay warm across requests, so a serve session amortises everything a
   one-shot invocation pays per run.  A bad request never kills the
   session (the response carries "ok":false); EOF ends it.

   Hardening (this PR): the session is meant to run for days —
     - pool maps run under one shared [Supervisor]: a crashed worker
       domain is respawned and the lost item retried or quarantined, so
       a request never loses a function result;
     - `--request-timeout SECS` bounds each request via the existing
       budget plumbing (solver/analysis deadlines) plus a monotonic-clock
       watchdog that *counts* overruns (`requests_over_deadline`) —
       degrade and report, never kill;
     - SIGINT/SIGTERM shut down gracefully: the in-flight request
       finishes and its complete response line is flushed, then the
       session exits 0;
     - `status` reports uptime and all counters as JSON;
     - `--inject SPEC` (or $ACC_FAULTS) turns on the deterministic
       fault-injection harness for soak testing.

   Socket mode (this PR): `--socket PATH` (and/or `--tcp PORT` on
   localhost) serves the same request grammar to many concurrent
   clients at once, each connection newline-framed exactly like stdin;
   all connections feed one bounded scheduler (see Ac_serve.Server for
   the backpressure and drain contract).  Stdin and socket modes share
   [handle_line] below — one request-handling core, so a response is
   byte-identical whichever transport carried it.  `--connect PATH`
   turns the binary into a pipelining line client for shell scripts. *)
let serve jobs request_timeout inject store_dir no_store socket_path tcp_port
    max_inflight connect_path trace trace_format metrics_port flight_recorder
    flight_dump_path slow_ms slow_log =
  (match connect_path with
  | Some path -> exit (Ac_serve.Client.run ~path)
  | None -> ());
  if metrics_port <> None && socket_path = None && tcp_port = None then
    usage_error "acc serve: --metrics-port requires socket mode (--socket or --tcp)";
  setup_trace trace trace_format;
  (* Flight recorder: bounded per-domain span rings (overwrite-oldest),
     dumped on SIGUSR1, on a watchdog deadline overrun, and on fatal
     exit.  Dumps are repaired for truncation, so they always validate. *)
  let usr1_requested = Atomic.make false in
  (match flight_recorder with
  | None -> ()
  | Some n ->
    if n <= 0 then usage_error "acc serve: --flight-recorder: N must be positive";
    Obs.set_enabled true;
    Obs.set_ring (Some n);
    let path =
      match flight_dump_path with
      | Some p -> p
      | None -> Printf.sprintf "acc-flight-%d.json" (Unix.getpid ())
    in
    flight_dump := Some (fun () -> write_trace ~format:trace_format path);
    (try
       Sys.set_signal Sys.sigusr1
         (Sys.Signal_handle (fun _ -> Atomic.set usr1_requested true))
     with Invalid_argument _ | Sys_error _ -> ()));
  (* Honour a pending SIGUSR1 outside any syscall: called once per event
     loop tick in socket mode and per line in stdin mode. *)
  let check_usr1 () =
    if Atomic.compare_and_set usr1_requested true false then maybe_dump_flight ()
  in
  (* Proof-effort accounting is armed whenever the scrape plane is up:
     the kernel hook stays a no-op otherwise, and CI byte-compares
     hooked vs unhooked sessions. *)
  if metrics_port <> None then begin
    Ac_kernel.Thm.set_obs_hook (Some Effort.on_rule);
    Effort.set_enabled true
  end;
  let jobs = max 1 jobs in
  (match inject with
  | None -> ()
  | Some spec -> (
    match Faults.parse spec with
    | Ok cfg -> Faults.install cfg
    | Error m -> usage_error "acc serve: %s" m));
  let store = store_of ~store_dir ~no_store in
  let pool = if jobs > 1 then Some (Pool.create ~jobs) else None in
  let sup = Supervisor.create ?task_deadline_s:request_timeout () in
  Fun.protect ~finally:(fun () -> Option.iter Pool.shutdown pool) @@ fun () ->
  let budgets =
    (* The request timeout rides the existing budget plumbing: the
       unbounded engines already know how to stop at a deadline and
       degrade (guards kept, proofs left open) instead of hanging. *)
    match request_timeout with
    | None -> Driver.default_budgets
    | Some t ->
      { Driver.default_budgets with
        Driver.solver_deadline_s = Some t;
        analysis_deadline_s = Some t }
  in
  let options =
    options_of ~keep_going:true ~budgets ~jobs ~no_heap:false ~no_word:false
      ~keep_low:[] ()
  in
  let started = mono_s () in
  (* Session counters live in the metrics registry (one source of truth
     for `status`, the `metrics` verb and any future exporter) instead
     of ad-hoc refs.  An increment is one atomic op, so these stay on
     even when tracing is off. *)
  let m_requests = Metrics.counter "serve.requests" in
  let m_failures = Metrics.counter "serve.failures" in
  let m_degraded = Metrics.counter "serve.degraded" in
  let m_over_deadline = Metrics.counter "serve.requests_over_deadline" in
  let m_shed = Metrics.counter "serve.shed" in
  let m_store_hits = Metrics.counter "serve.store_hits" in
  let m_store_misses = Metrics.counter "serve.store_misses" in
  let m_retries = Metrics.counter "serve.retries" in
  let m_quarantined = Metrics.counter "serve.quarantined" in
  let m_restarts = Metrics.counter "serve.worker_restarts" in
  let h_latency = Metrics.histogram "serve.request_latency_s" in
  (* Mirror of [Obs.dropped] (events lost to buffer caps or ring
     overwrites), refreshed before every exposition so the scrape and
     the status verb agree. *)
  let m_trace_dropped = Metrics.counter "trace.dropped_events" in
  (* Slow-request log: requests whose wall-clock exceeds the threshold
     append one structured JSONL record.  The channel opens lazily (the
     common case logs nothing) and appends, so operators can tail one
     file across server restarts. *)
  let slow_cfg =
    match (slow_ms, slow_log) with
    | None, None -> None
    | ms, path ->
      Some
        ( Option.value ms ~default:1000.,
          lazy
            (open_out_gen
               [ Open_wronly; Open_append; Open_creat ]
               0o644
               (Option.value path ~default:"acc-slow.jsonl")) )
  in
  (* Graceful shutdown: the handler only flips a flag (async-signal-safe);
     the main loop finishes the in-flight request, flushes, and exits.
     A signal while blocked in [Unix.read] surfaces as EINTR, so the
     flag is honoured immediately even on an idle session. *)
  let shutting = Atomic.make false in
  let install_signal s =
    try Sys.set_signal s (Sys.Signal_handle (fun _ -> Atomic.set shutting true))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  install_signal Sys.sigterm;
  install_signal Sys.sigint;
  let respond line =
    print_string line;
    print_newline ();
    flush stdout
  in
  let err_json msg =
    Metrics.incr m_failures;
    Printf.sprintf "{\"ok\":false,\"error\":\"%s\"}" (Diag.json_escape msg)
  in
  (* Set in socket mode so `status` can report the scheduler. *)
  let sched_stats : (unit -> Ac_serve.Server.sched_stats) option ref = ref None in
  (* Counter invariants (asserted by the serve tests):
     - [requests] counts EVERY non-empty request line the session
       accepts, across stdin and all socket connections — translate/
       check/lint, `status` itself, malformed and unknown lines, and
       shed requests all count, and each counted line gets exactly one
       response.
     - [failures] counts the subset answered with "ok":false (bad
       request, unknown command, internal error, shed), so
       failures <= requests always.  Before PR 8, malformed lines
       bumped [failures] but not [requests], so a status probe could
       report more failures than requests. *)
  let status_json () =
    let s = Supervisor.stats sup in
    let sched =
      match !sched_stats with
      | None -> ""
      | Some f ->
        let n = f () in
        Printf.sprintf
          ",\"conns\":{\"active\":%d,\"total\":%d},\"sched\":{\"queued\":%d,\"shed\":%d,\"drained\":%d,\"net_io_faults\":%d}"
          n.Ac_serve.Server.active_conns n.Ac_serve.Server.total_conns
          n.Ac_serve.Server.queued n.Ac_serve.Server.shed
          n.Ac_serve.Server.drained n.Ac_serve.Server.net_io_faults
    in
    (* Request-latency percentiles from the histogram, in ms.  Appended
       AFTER every pre-existing field (including the conditional socket
       [sched] block) so PR 7/8 consumers parsing a status prefix keep
       working; precision is one log bucket (~19%). *)
    let lat =
      Printf.sprintf ",\"latency_ms\":{\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f}"
        (1000. *. Metrics.quantile h_latency 0.50)
        (1000. *. Metrics.quantile h_latency 0.95)
        (1000. *. Metrics.quantile h_latency 0.99)
    in
    (* Trace events lost to span-buffer caps or flight-recorder ring
       overwrites.  Appended after [lat], preserving every earlier
       prefix. *)
    let dropped = Printf.sprintf ",\"dropped\":%d" (Obs.dropped ()) in
    Printf.sprintf
      "{\"ok\":true,\"cmd\":\"status\",\"uptime_s\":%.3f,\"requests\":%d,\"failures\":%d,\"degraded\":%d,\"retries\":%d,\"quarantined\":%d,\"worker_restarts\":%d,\"worker_crashes\":%d,\"deadline_blown\":%d,\"requests_over_deadline\":%d,\"store\":{\"hits\":%d,\"misses\":%d},\"faults_active\":%b,\"shutting_down\":%b%s%s%s}"
      (mono_s () -. started)
      (Metrics.counter_value m_requests)
      (Metrics.counter_value m_failures)
      (Metrics.counter_value m_degraded)
      s.Supervisor.retries s.Supervisor.quarantined s.Supervisor.restarts
      s.Supervisor.crashes s.Supervisor.deadline_blown
      (Metrics.counter_value m_over_deadline)
      (match store with Some st -> Store.hits st | None -> 0)
      (match store with Some st -> Store.misses st | None -> 0)
      (Faults.active () <> None)
      (Atomic.get shutting)
      sched lat dropped
  in
  let read_source file =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* The one request-handling core, shared verbatim by stdin and socket
     modes: one trimmed non-empty request line in, its one-line JSON
     response out.  Total by construction — every exception becomes an
     "ok":false response — because in socket mode a raise would tear
     down the event loop under every other client. *)
  (* Per-request activity for the slow-request log, filled in by [run]
     below.  Request execution is serialized (stdin loop or the socket
     scheduler's execute-one), so plain refs are race-free. *)
  let req_store_hits = ref 0 in
  let req_store_misses = ref 0 in
  let req_retries = ref 0 in
  let req_degraded = ref 0 in
  let req_overrun = ref false in
  let handle_line ?(queued_s = 0.) line : string =
    Metrics.incr m_requests;
    let rid_n = Metrics.counter_value m_requests in
    req_store_hits := 0;
    req_store_misses := 0;
    req_retries := 0;
    req_degraded := 0;
    req_overrun := false;
    let t0 = mono_s () in
    let body () =
      match
      if line = "status" then status_json ()
      else if line = "metrics" then
        (* The whole registry: session counters plus the latency
           histogram (count/mean/p50/p95/p99). *)
        Printf.sprintf "{\"ok\":true,\"cmd\":\"metrics\",\"metrics\":%s}"
          (Metrics.to_json ())
      else begin
        match String.index_opt line ' ' with
        | None ->
          err_json
            (Printf.sprintf
               "bad request %S (want: translate|check|lint FILE, or status)" line)
        | Some i -> (
          let cmd = String.sub line 0 i in
          let file = String.trim (String.sub line i (String.length line - i)) in
          let run () =
            Faults.sleep_if_slow ();
            let t0 = mono_s () in
            let res =
              Driver.run ~options ?store ?pool ~supervisor:sup ~fresh_tables:false
                (read_source file)
            in
            (* The after-the-fact half of the watchdog: the budget deadlines
               bound the engines from inside, this counts requests that
               still overran (e.g. many functions each under budget). *)
            (match request_timeout with
            | Some t when mono_s () -. t0 > t ->
              Metrics.incr m_over_deadline;
              req_overrun := true;
              (* A deadline overrun is exactly the moment the last N
                 events matter: dump the flight recorder (no-op when not
                 armed). *)
              maybe_dump_flight ()
            | _ -> ());
            Metrics.add m_degraded (List.length res.Driver.degraded);
            (* Per-request store/supervision activity, via the counters the
               driver already aggregates for this run. *)
            Metrics.add m_store_hits res.Driver.store_hits;
            Metrics.add m_store_misses res.Driver.store_misses;
            Metrics.add m_retries res.Driver.retries;
            Metrics.add m_quarantined res.Driver.quarantined;
            Metrics.add m_restarts res.Driver.restarts;
            req_store_hits := res.Driver.store_hits;
            req_store_misses := res.Driver.store_misses;
            req_retries := res.Driver.retries;
            req_degraded := List.length res.Driver.degraded;
            res
          in
          match cmd with
          | "translate" ->
            let res = run () in
            Printf.sprintf "{\"ok\":true,\"cmd\":\"translate\",\"result\":%s}"
              (result_json ~file res)
          | "check" ->
            let res = run () in
            let kernel =
              match Driver.check_all res with
              | Ok () -> "\"ok\""
              | Error e -> Printf.sprintf "\"failed: %s\"" (Diag.json_escape e)
            in
            Printf.sprintf
              "{\"ok\":true,\"cmd\":\"check\",\"file\":\"%s\",\"kernel\":%s,\"degraded\":%d,\"store\":{\"hits\":%d,\"misses\":%d}}"
              (Diag.json_escape file) kernel
              (List.length res.Driver.degraded)
              res.Driver.store_hits res.Driver.store_misses
          | "lint" ->
            let res = run () in
            let lenv = res.Driver.ctx.Ac_kernel.Rules.lenv in
            let findings =
              Ac_analysis.sort_findings
                (List.concat_map
                   (fun fr ->
                     Ac_analysis.lint_func lenv ~simpl:fr.Driver.fr_simpl
                       ~sums:res.Driver.sums fr.Driver.fr_l2)
                   res.Driver.funcs)
            in
            (* Findings use the same structured-diagnostic JSON shape as
               --diag-json (phase/function/line/col/severity/message), so a
               serve client and a one-shot client parse one format. *)
            Printf.sprintf "{\"ok\":true,\"cmd\":\"lint\",\"file\":\"%s\",\"findings\":%s}"
              (Diag.json_escape file)
              (Diag.list_to_json
                 (List.map (diag_of_finding ~severity:Diag.Warning) findings))
          | other -> err_json (Printf.sprintf "unknown command %S" other))
      end
      with
      | resp -> resp
      (* One failing request (missing file, parse error, even an internal
         error) answers with ok:false and the session continues. *)
      | exception Diag.Error d -> err_json (Diag.to_string d)
      | exception Sys_error m -> err_json m
      | exception e -> err_json (Diag.message_of_exn e)
    in
    let resp =
      if Obs.enabled () then
        (* Trace id: the request ordinal, attached to every event this
           request records (driver phases included) via the domain-local
           context. *)
        let rid = Printf.sprintf "req-%d" rid_n in
        Obs.with_ctx rid (fun () -> Obs.span ~cat:"serve" "serve.request" body)
      else body ()
    in
    let dur = mono_s () -. t0 in
    Metrics.observe h_latency dur;
    (match slow_cfg with
    | Some (threshold_ms, oc) when 1000. *. dur >= threshold_ms ->
      let verb =
        match String.index_opt line ' ' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let oc = Lazy.force oc in
      Printf.fprintf oc
        "{\"rid\":%d,\"verb\":\"%s\",\"latency_ms\":%.3f,\"queue_ms\":%.3f,\"store_hits\":%d,\"store_misses\":%d,\"retries\":%d,\"degraded\":%d,\"over_deadline\":%b}\n"
        rid_n (Diag.json_escape verb) (1000. *. dur) (1000. *. queued_s)
        !req_store_hits !req_store_misses !req_retries !req_degraded !req_overrun;
      flush oc
    | _ -> ());
    resp
  in
  (* Stdin mode.  The line reader sits on [Unix.read] rather than
     [input_line]: OCaml channels retry EINTR internally, so a SIGTERM
     arriving while the session is blocked waiting for a request would
     be invisible until the next byte shows up.  With a raw read the
     signal interrupts the syscall, the handler flips [shutting], and
     the loop exits.  Framing goes through [Ac_serve.Line_buf] — the
     old reader rebuilt [Buffer.contents] per extracted line, which is
     O(n²) across a pipelined batch arriving in one chunk; the shared
     buffer makes delivery chunking irrelevant (and is the same framing
     the socket server uses). *)
  let run_stdin () =
    let lb = Ac_serve.Line_buf.create () in
    let chunk = Bytes.create 4096 in
    let rec next_line () : string option =
      match Ac_serve.Line_buf.next lb with
      | Some l -> Some l
      | None ->
        if Atomic.get shutting then None
        else begin
          match Unix.read Unix.stdin chunk 0 (Bytes.length chunk) with
          | 0 ->
            (* EOF: a trailing unterminated line still counts as a request. *)
            Ac_serve.Line_buf.take_rest lb
          | n ->
            Ac_serve.Line_buf.add lb chunk 0 n;
            next_line ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_line ()
        end
    in
    let rec loop () =
      check_usr1 ();
      if Atomic.get shutting then ()
      else begin
        match next_line () with
        | None -> ()
        | Some raw ->
          let line = String.trim raw in
          if line <> "" then respond (handle_line line);
          loop ()
      end
    in
    loop ()
  in
  (match (socket_path, tcp_port) with
  | None, None -> run_stdin ()
  | _ ->
    (* Socket mode: many clients, one scheduler (Ac_serve.Server).  A
       client disappearing mid-response must not kill the server, so
       writes see EPIPE as an error, not a signal. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    let cfg =
      {
        Ac_serve.Server.socket_path;
        tcp_port;
        metrics_port;
        max_inflight = max 1 max_inflight;
        backlog = 64;
        shutting;
      }
    in
    (* The scrape/health plane.  Rendered in the select loop between
       request executions, so every exposition sees the registry
       quiescent — cumulative histogram buckets can never tear. *)
    let metrics_body () =
      Metrics.set_counter m_trace_dropped (Obs.dropped ());
      Metrics.to_openmetrics () ^ Effort.to_openmetrics () ^ "# EOF\n"
    in
    let readyz () =
      (* Ready = willing and able to take a request: not draining, the
         store lock reachable (a wedged lock blocks every store path),
         and no worker domain dead without a respawn. *)
      if Atomic.get shutting then Error "draining"
      else
        let store_ok =
          match store with
          | None -> true
          | Some st -> (
            match
              Ac_store.Lock.with_lock ~timeout_s:0.2 ~dir:(Store.dir st)
                (fun ~locked -> locked)
            with
            | ok -> ok
            | exception _ -> false)
        in
        if not store_ok then Error "store lock unreachable"
        else
          let s = Supervisor.stats sup in
          if s.Supervisor.crashes > s.Supervisor.restarts then
            Error "worker pool degraded"
          else Ok ()
    in
    let http path =
      match path with
      | "/metrics" -> (200, metrics_body ())
      | "/healthz" -> (200, "ok\n")
      | "/readyz" -> (
        match readyz () with
        | Ok () -> (200, "ready\n")
        | Error why -> (503, why ^ "\n"))
      | _ -> (404, "not found\n")
    in
    (match Ac_serve.Server.create cfg with
    | Error m -> usage_error "acc serve: %s" m
    | Ok srv ->
      sched_stats := Some (fun () -> Ac_serve.Server.stats srv);
      (* A shed request is a counted request that failed — the client
         got a response line, just not the one it wanted. *)
      Ac_serve.Server.run ~http ~on_tick:check_usr1
        ~handler:(fun ~queued_s line -> handle_line ~queued_s line)
        ~on_shed:(fun () ->
          Metrics.incr m_requests;
          Metrics.incr m_failures;
          Metrics.incr m_shed)
        srv));
  (* Flush everything on the way out so the final response line is
     complete even under a signal-driven shutdown; store counters are
     in-memory only, entries were already published atomically.  An
     in-progress --trace is written here, right after the drain, rather
     than only from [at_exit]: the drain promised every harvested
     request a response, and the trace of those requests is part of the
     same promise (the at_exit rewrite is then a harmless no-op). *)
  (match trace with Some path -> write_trace ~format:trace_format path | None -> ());
  flush stdout

(* `acc cache stat|clear|gc|doctor`: maintenance of the persistent proof
   store.  gc and doctor take the store lock (so they never race a
   concurrent writer destructively) and honour the tmp-file grace window
   (so they never delete an in-flight write). *)
let cache action store_dir max_entries grace purge =
  let dir =
    match store_dir with Some d -> Some d | None -> Sys.getenv_opt "ACC_STORE"
  in
  match dir with
  | None -> usage_error "acc cache: no store directory (use --store DIR or $ACC_STORE)"
  | Some dir -> (
    let or_die = function
      | Ok v -> v
      | Error m -> raise (Diag.Error (Diag.make ~severity:Diag.Error Diag.Store m))
    in
    match action with
    | `Stat ->
      let s = or_die (Store.stat ~dir) in
      Printf.printf "%s: %d entries, %d bytes\n" dir s.Store.entries s.Store.bytes
    | `Clear ->
      let n = or_die (Store.clear ~dir) in
      Printf.printf "%s: removed %d entries\n" dir n
    | `Gc ->
      let n = or_die (Store.gc ?grace_s:grace ~dir ~max_entries ()) in
      Printf.printf "%s: removed %d entries (kept newest %d)\n" dir n max_entries
    | `Doctor ->
      let r = or_die (Store.doctor ?grace_s:grace ~purge ~dir ()) in
      Printf.printf
        "%s: scanned %d entries: %d ok, %d corrupt (quarantined), %d orphaned tmp \
         files quarantined; %d files in quarantine%s\n"
        dir r.Store.dr_scanned r.Store.dr_ok r.Store.dr_quarantined
        r.Store.dr_tmp_quarantined r.Store.dr_quarantine_files
        (if purge then Printf.sprintf " (purged %d)" r.Store.dr_purged else ""))

(* ------------------------------------------------------------------ *)
(* `acc trace`: run a traced translation over one or more files and write
   the merged trace, or validate an existing trace file
   (`--validate TRACE`).  The validator is deliberately self-contained —
   it checks the structural invariants a trace viewer relies on
   (balanced B/E per thread, monotone timestamps, integer pid/tid) over
   the one-event-per-line format this binary emits, so ci.sh needs no
   external JSON tooling. *)

let find_sub (s : string) (pat : string) : int option =
  let n = String.length s and m = String.length pat in
  let rec go i =
    if i + m > n then None else if String.sub s i m = pat then Some i else go (i + 1)
  in
  go 0

(* Raw value text after ["key":], up to the next [,}] — fields this
   binary emits in fixed order ahead of the free-form [args] object, so
   the first match is the real field. *)
let field_raw line key =
  match find_sub line (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some i ->
    let start = i + String.length key + 3 in
    let rec stop j =
      if j >= String.length line then j
      else match line.[j] with ',' | '}' -> j | _ -> stop (j + 1)
    in
    Some (String.sub line start (stop start - start))

let field_str line key =
  match field_raw line key with
  | Some v
    when String.length v >= 2 && v.[0] = '"' && v.[String.length v - 1] = '"' ->
    Some (String.sub v 1 (String.length v - 2))
  | _ -> None

let validate_trace path =
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        prerr_endline ("acc trace: invalid trace: " ^ m);
        exit 1)
      fmt
  in
  let lines = String.split_on_char '\n' (read_file path) in
  let is_event l =
    String.length l > 7 && String.sub l 0 8 = "{\"name\":"
  in
  let events = List.filter is_event lines in
  if events = [] then fail "no events in %s" path;
  (* Per-tid span stack (B pushes, E must match the top) and last
     timestamp (must be monotone per tid — events within a tid are in
     buffer order). *)
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let last_ts : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
  let tids = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      let name =
        match field_str line "name" with
        | Some n -> n
        | None -> fail "line %d: missing name" ln
      in
      let ph =
        match field_str line "ph" with
        | Some p -> p
        | None -> fail "line %d: missing ph" ln
      in
      let int_field key =
        match field_raw line key with
        | Some v -> (
          match int_of_string_opt v with
          | Some n when n >= 0 -> n
          | _ -> fail "line %d: bad %s %S" ln key v)
        | None -> fail "line %d: missing %s" ln key
      in
      let pid = int_field "pid" in
      ignore pid;
      let tid = int_field "tid" in
      Hashtbl.replace tids tid ();
      let ts =
        match Option.bind (field_raw line "ts") float_of_string_opt with
        | Some t when t >= 0. && Float.is_finite t -> t
        | _ -> fail "line %d: bad ts" ln
      in
      (match Hashtbl.find_opt last_ts tid with
      | Some r ->
        if ts < !r then fail "line %d: ts not monotone on tid %d" ln tid;
        r := ts
      | None -> Hashtbl.add last_ts tid (ref ts));
      let stack =
        match Hashtbl.find_opt stacks tid with
        | Some s -> s
        | None ->
          let s = ref [] in
          Hashtbl.add stacks tid s;
          s
      in
      match ph with
      | "B" -> stack := name :: !stack
      | "E" -> (
        match !stack with
        | top :: rest ->
          if top <> name then
            fail "line %d: E %S does not match open span %S on tid %d" ln name top tid;
          stack := rest
        | [] -> fail "line %d: E %S with no open span on tid %d" ln name tid)
      | "i" | "I" -> ()
      | "X" -> (
        match Option.bind (field_raw line "dur") float_of_string_opt with
        | Some d when d >= 0. && Float.is_finite d -> ()
        | _ -> fail "line %d: X event with bad dur" ln)
      | other -> fail "line %d: unknown ph %S" ln other)
    events;
  Hashtbl.iter
    (fun tid s ->
      match !s with
      | [] -> ()
      | top :: _ -> fail "unbalanced trace: span %S still open on tid %d" top tid)
    stacks;
  Printf.printf "%s: OK: %d events, %d threads\n" path (List.length events)
    (Hashtbl.length tids)

let trace_run files out format jobs validate =
  match validate with
  | Some tpath -> validate_trace tpath
  | None ->
    if files = [] then
      usage_error "acc trace: no input files (or use --validate TRACE)";
    let out =
      match out with
      | Some o -> o
      | None -> usage_error "acc trace: --out FILE required"
    in
    Obs.set_enabled true;
    let options =
      options_of ~keep_going:true ~jobs ~no_heap:false ~no_word:false ~keep_low:[] ()
    in
    let funcs = ref 0 in
    List.iter
      (fun file ->
        let source = read_file file in
        Obs.with_ctx (Filename.basename file) @@ fun () ->
        let res = run_frontend ~file ~options source in
        funcs := !funcs + List.length res.Driver.funcs)
      files;
    let evs = Obs.harvest () in
    write_trace ~format out;
    Printf.printf "trace: %d file(s), %d function(s), %d event(s) -> %s\n"
      (List.length files) !funcs (List.length evs) out

(* ------------------------------------------------------------------ *)
(* `acc effort`: translate FILE(s) with proof-effort accounting armed and
   report where the kernel's work went — per-rule application counts,
   refinement-chain shapes, guard-discharge provenance.  The kernel
   observation hook is installed HERE, from outside the kernel; the
   translation output itself is byte-identical to an unhooked run (ci.sh
   asserts it). *)
let effort_run files json jobs store_dir no_store =
  if files = [] then usage_error "acc effort: no input files";
  Ac_kernel.Thm.set_obs_hook (Some Effort.on_rule);
  Effort.set_enabled true;
  let options =
    options_of ~keep_going:true ~jobs ~no_heap:false ~no_word:false ~keep_low:[] ()
  in
  let store = store_of ~store_dir ~no_store in
  List.iter
    (fun file ->
      let source = read_file file in
      let (_ : Driver.result) = run_frontend ?store ~file ~options source in
      ())
    files;
  if json then print_endline (Effort.snapshot_json ())
  else begin
    Printf.printf "proof effort over %d file(s):\n" (List.length files);
    Printf.printf "  %-32s %10s\n" "rule" "applied";
    List.iter
      (fun (r, n) -> Printf.printf "  %-32s %10d\n" r n)
      (Effort.rule_counts ());
    Printf.printf "  %-32s %10d\n" "total" (Effort.total_applications ());
    let chains = Metrics.counter_value (Metrics.counter "kernel.chains") in
    let hd = Metrics.histogram "kernel.chain_depth" in
    let hs = Metrics.histogram "kernel.chain_size" in
    Printf.printf "chains: %d (depth p50 %.0f p95 %.0f, size p50 %.0f p95 %.0f)\n"
      chains (Metrics.quantile hd 0.50) (Metrics.quantile hd 0.95)
      (Metrics.quantile hs 0.50) (Metrics.quantile hs 0.95);
    Printf.printf "discharge provenance: %d intra, %d interproc, %d scrub_dead\n"
      (Metrics.counter_value (Metrics.counter "kernel.discharged_intra"))
      (Metrics.counter_value (Metrics.counter "kernel.discharged_interproc"))
      (Metrics.counter_value (Metrics.counter "kernel.discharged_scrub_dead"))
  end

(* Wrap a fully-applied command body in [protect], keeping cmdliner's
   n-ary term application readable. *)
let protected term = Term.(const protect $ term $ const ())

let translate_cmd =
  Cmd.v
    (Cmd.info "translate" ~doc:"Abstract a C file and print the result")
    (protected
       Term.(
         const (fun a b c d e f g h i j k l m n o p () ->
             translate a b c d e f g h i j k l m n o p)
         $ files_arg $ no_heap $ no_word $ no_discharge $ no_interproc $ keep_low $ stage
         $ func_filter $ keep_going $ diag_json $ budgets_term $ jobs $ store_dir_arg
         $ no_store_arg $ trace_arg $ trace_format_arg))

let check_cmd =
  let cases =
    Arg.(value & opt int 100 & info [ "cases" ] ~doc:"Differential test cases per function")
  in
  let uncached =
    Arg.(
      value & flag
      & info [ "uncached" ]
          ~doc:
            "Re-walk every derivation occurrence with the kernel's own checker \
             instead of the memoized external one (same verdicts, slower; the \
             ground-truth mode)")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Re-validate derivations and differential-test the abstraction")
    (protected
       Term.(
         const (fun a b c d e f g h i j k l m n o () ->
             check a b c d e f g h i j k l m n o)
         $ file_arg $ no_heap $ no_word $ no_discharge $ no_interproc $ keep_low
         $ keep_going $ budgets_term $ cases $ jobs $ uncached $ store_dir_arg
         $ no_store_arg $ trace_arg $ trace_format_arg))

let stats_cmd =
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Also print per-phase wall-clock and allocation counters \
             (cumulative across worker domains)")
  in
  let profile_json =
    Arg.(
      value & flag
      & info [ "profile-json" ]
          ~doc:"Print the per-phase profile as JSON instead of the tables")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Pipeline statistics (Table 5 metrics)")
    (protected
       Term.(
         const (fun a b c d e f () -> stats a b c d e f)
         $ file_arg $ profile $ profile_json $ jobs $ store_dir_arg $ no_store_arg))

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Report statically refutable UB guards and uninitialised reads")
    (protected
       Term.(
         const (fun a b c d e f g h () -> lint a b c d e f g h)
         $ file_arg $ no_heap $ no_word $ no_interproc $ keep_low $ jobs $ store_dir_arg
         $ no_store_arg))

let analyze_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine output: one JSON object with the summary, per-function \
             counts and --diag-json-shaped findings")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Whole-program guard report: every parser-emitted UB guard classified \
          as discharged (proven impossible, kernel-checked), refuted (likely \
          UB) or residual (left for the verification engineer).  Exit 0 when \
          nothing is refuted, 1 on refuted findings, 2 on input errors.")
    (protected
       Term.(
         const (fun a b c d e f g h i j k l () -> analyze a b c d e f g h i j k l)
         $ file_arg $ no_heap $ no_word $ no_interproc $ keep_low $ budgets_term $ jobs
         $ json $ store_dir_arg $ no_store_arg $ trace_arg $ trace_format_arg))

let serve_cmd =
  let request_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "request-timeout" ] ~docv:"SECS"
          ~doc:
            "Per-request wall-clock deadline: installed as the solver/analysis \
             budget deadline (the engines degrade instead of hanging) and \
             watched by a monotonic clock — overruns are counted in `status`, \
             never killed")
  in
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"SPEC"
          ~doc:
            "Deterministic fault injection for soak testing, e.g. \
             'io_error:0.05,worker_crash:0.02,slow:0.01,seed:42'.  Overrides \
             \\$ACC_FAULTS.")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve many concurrent clients over a Unix-domain socket at $(docv) \
             instead of stdin.  Each connection is newline-framed exactly like \
             stdin mode; all connections share one bounded scheduler.  A stale \
             socket file left by a dead server is replaced.")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:
            "Also (or instead) listen on 127.0.0.1:$(docv).  Loopback only — \
             the server speaks an unauthenticated local protocol.")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 64
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Backpressure bound for socket mode: at most $(docv) requests \
             queued or executing across all connections; beyond that, requests \
             are shed with {\"ok\":false,\"error\":\"overloaded\"} in request \
             order rather than buffered without bound.")
  in
  let connect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"PATH"
          ~doc:
            "Client mode: relay stdin to the socket server at $(docv) and its \
             responses to stdout (a pipelining line client, so shell scripts \
             need no socat/netcat).  Exits when the server has answered \
             everything and closed the connection.")
  in
  let metrics_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Serve an OpenMetrics/Prometheus scrape endpoint on \
             127.0.0.1:$(docv): GET /metrics (counters, gauges, latency \
             histograms, proof-effort series), /healthz (liveness), /readyz \
             (store lock reachable, worker pool healthy).  Handled by the \
             same select loop as request traffic — request output stays \
             byte-identical whether or not anyone scrapes.  Socket mode \
             only.")
  in
  let flight_recorder_arg =
    Arg.(
      value
      & opt ~vopt:(Some 65536) (some int) None
      & info [ "flight-recorder" ] ~docv:"N"
          ~doc:
            "Keep the last $(docv) trace events per domain in a bounded ring \
             (overwrite-oldest, default 65536) instead of unbounded buffers, \
             and dump them on SIGUSR1, on a --request-timeout overrun, and on \
             fatal exit.  Dumps are truncation-repaired, so they always pass \
             `acc trace --validate`.")
  in
  let flight_dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-dump" ] ~docv:"FILE"
          ~doc:
            "Where --flight-recorder writes its dumps (default \
             acc-flight-<pid>.json, in --trace-format)")
  in
  let slow_ms_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-request threshold: requests taking longer than $(docv) \
             milliseconds append a structured JSONL record (rid, verb, \
             latency, queue wait, store hits/misses, retries) to the \
             --slow-log file (default 1000 when only --slow-log is given)")
  in
  let slow_log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "slow-log" ] ~docv:"FILE"
          ~doc:
            "Slow-request log file, appended and flushed per record (default \
             acc-slow.jsonl when only --slow-ms is given)")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived batch mode: read newline-delimited requests (translate FILE, \
          check FILE, lint FILE, status) from stdin — or from many concurrent \
          socket clients with --socket/--tcp — and answer each with one JSON \
          line, keeping the proof store, worker pool and hash-cons tables warm.  \
          Supervised: crashed worker domains are respawned and their tasks \
          retried or quarantined; SIGINT/SIGTERM drain in-flight requests \
          across all connections and exit 0.")
    (protected
       Term.(
         const (fun a b c d e f g h i j k l m n o p () ->
             serve a b c d e f g h i j k l m n o p)
         $ jobs $ request_timeout $ inject $ store_dir_arg $ no_store_arg
         $ socket_arg $ tcp_arg $ max_inflight_arg $ connect_arg $ trace_arg
         $ trace_format_arg $ metrics_port_arg $ flight_recorder_arg
         $ flight_dump_arg $ slow_ms_arg $ slow_log_arg))

let trace_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Where to write the merged trace")
  in
  let validate_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "validate" ] ~docv:"TRACE"
          ~doc:
            "Instead of running anything, check that $(docv) is a well-formed \
             trace: every begin has a matching end on its thread, timestamps \
             are monotone per thread, pids/tids are valid.  Exit 0 when OK, 1 \
             otherwise.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a traced translation over FILE(s) and write the merged trace \
          (Chrome trace_event JSON for about:tracing/Perfetto, or JSONL), or \
          validate an existing trace with --validate.  Equivalent to `acc \
          translate --trace` but quiet: it prints a one-line summary instead \
          of the translated program.")
    (protected
       Term.(
         const (fun a b c d e () -> trace_run a b c d e)
         $ Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc:"C source file(s)")
         $ out_arg $ trace_format_arg $ jobs $ validate_arg))

let effort_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine output: one JSON object with per-rule application \
             counts, chain depth/size histograms and discharge provenance")
  in
  Cmd.v
    (Cmd.info "effort"
       ~doc:
         "Proof-effort report: translate FILE(s) with kernel observation \
          armed and report per-rule application counts, refinement-chain \
          depth/size, and guard-discharge provenance (intraprocedural vs \
          interprocedural vs dead-code scrubbing).  Observation only: the \
          translation output is byte-identical to an unobserved run.")
    (protected
       Term.(
         const (fun a b c d e () -> effort_run a b c d e)
         $ Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc:"C source file(s)")
         $ json $ jobs $ store_dir_arg $ no_store_arg))

let cache_cmd =
  let action =
    Arg.(
      required
      & pos 0
          (some
             (enum [ ("stat", `Stat); ("clear", `Clear); ("gc", `Gc); ("doctor", `Doctor) ]))
          None
      & info [] ~docv:"ACTION" ~doc:"stat, clear, gc or doctor")
  in
  let max_entries =
    Arg.(
      value & opt int 1024
      & info [ "max-entries" ] ~docv:"N"
          ~doc:"gc: keep only the newest $(docv) entries")
  in
  let grace =
    Arg.(
      value
      & opt (some float) None
      & info [ "grace" ] ~docv:"SECS"
          ~doc:
            "gc/doctor: treat tmp files younger than $(docv) seconds as \
             in-flight writes and leave them alone (default 60)")
  in
  let purge =
    Arg.(
      value & flag
      & info [ "purge" ] ~doc:"doctor: delete the quarantined files after reporting")
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Manage the persistent proof store (stat, clear, gc, doctor).  doctor \
          verifies every entry end-to-end (read, digest, decode), quarantines \
          damaged ones into .quarantine/, and reports; gc and doctor run under \
          the store lock.")
    (protected
       Term.(
         const (fun a b c d e () -> cache a b c d e)
         $ action $ store_dir_arg $ max_entries $ grace $ purge))

let () =
  (* $ACC_FAULTS arms the fault-injection harness for any subcommand (the
     soak drives one-shot invocations too); `acc serve --inject` overrides
     it.  A malformed spec is a usage error — silently injecting nothing
     would defeat the soak. *)
  (match Sys.getenv_opt "ACC_FAULTS" with
  | None | Some "" -> ()
  | Some spec -> (
    match Faults.parse spec with
    | Ok cfg -> Faults.install cfg
    | Error m -> usage_error "acc: ACC_FAULTS: %s" m));
  let info =
    Cmd.info "acc" ~version:"1.0.0"
      ~doc:"Proof-producing abstraction of C code (AutoCorres, PLDI 2014)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ translate_cmd; check_cmd; stats_cmd; lint_cmd; analyze_cmd; serve_cmd;
            trace_cmd; cache_cmd; effort_cmd ]))
